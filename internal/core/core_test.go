package core

import (
	"math"
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

func TestEquation1Value(t *testing.T) {
	d := pmc.Counters{LLCMisses: 500, UnhaltedCycles: machine.CPUFreqKHz} // 1 ms busy
	if got := Equation1Value(d); got != 500 {
		t.Fatalf("eq1 = %v, want 500 misses/ms", got)
	}
	if Equation1Value(pmc.Counters{}) != 0 {
		t.Fatal("zero cycles must give 0")
	}
}

func TestRawLLCMValue(t *testing.T) {
	d := pmc.Counters{LLCMisses: 500, UnhaltedCycles: machine.CPUFreqKHz, HaltedCycles: machine.CPUFreqKHz}
	if got := RawLLCMValue(d); got != 250 {
		t.Fatalf("llcm = %v, want 250 (wall-normalized)", got)
	}
	if RawLLCMValue(pmc.Counters{}) != 0 {
		t.Fatal("zero wall must give 0")
	}
}

func TestIndicatorDispatch(t *testing.T) {
	d := pmc.Counters{LLCMisses: 100, UnhaltedCycles: machine.CPUFreqKHz, HaltedCycles: machine.CPUFreqKHz}
	if Equation1.Value(d) != 100 || RawLLCM.Value(d) != 50 {
		t.Fatal("indicator dispatch wrong")
	}
	if Equation1.String() != "equation1" || RawLLCM.String() != "llcm" {
		t.Fatal("indicator names wrong")
	}
	if Indicator(99).Value(d) != 0 {
		t.Fatal("unknown indicator must yield 0")
	}
}

func TestHaltsSeparateTheIndicators(t *testing.T) {
	// The Figure 4 mechanism: halting dilutes wall-normalized LLCM but
	// not busy-normalized Equation 1.
	busy := pmc.Counters{LLCMisses: 1000, UnhaltedCycles: 10 * machine.CPUFreqKHz}
	halty := busy
	halty.HaltedCycles = 30 * machine.CPUFreqKHz
	if Equation1Value(busy) != Equation1Value(halty) {
		t.Fatal("halts must not change equation 1")
	}
	if RawLLCMValue(halty) >= RawLLCMValue(busy) {
		t.Fatal("halts must dilute raw LLCM")
	}
}

func TestBusyWallMillis(t *testing.T) {
	d := pmc.Counters{UnhaltedCycles: 2 * machine.CPUFreqKHz, HaltedCycles: machine.CPUFreqKHz}
	if BusyMillis(d) != 2 || WallMillis(d) != 3 {
		t.Fatalf("busy/wall = %v/%v", BusyMillis(d), WallMillis(d))
	}
}

// mkDomain builds a single-vCPU VM with a permit.
func mkDomain(id int, cap float64) *vm.VM {
	d := &vm.VM{ID: id, Name: "vm", Weight: 256, LLCCap: cap}
	v := &vm.VCPU{VM: d, ID: id, Pin: vm.NoPin, LastCore: vm.NoPin}
	d.VCPUs = []*vm.VCPU{v}
	return d
}

func mkKyoto(domains ...*vm.VM) *Kyoto {
	k := New(sched.NewCredit(4))
	for _, d := range domains {
		k.Register(d.VCPUs[0])
	}
	return k
}

func TestKyotoName(t *testing.T) {
	k := New(sched.NewCredit(4))
	if k.Name() != "kyoto+credit" {
		t.Fatalf("name = %q", k.Name())
	}
	if k.Base().Name() != "credit" {
		t.Fatal("base accessor wrong")
	}
}

func TestQuotaStartsAtOneSlice(t *testing.T) {
	d := mkDomain(1, 100)
	k := mkKyoto(d)
	want := 100.0 * machine.TickMillis * machine.TicksPerSlice
	if got := k.QuotaBalance(d); got != want {
		t.Fatalf("initial quota = %v, want %v", got, want)
	}
}

func TestPollutionBlockAndPunishment(t *testing.T) {
	d := mkDomain(1, 100) // 3000 misses per slice allowed
	k := mkKyoto(d)
	k.Feed([]Measurement{{VM: d, Misses: 10_000, Rate: 1000}})
	k.EndTick(0) // not a refill boundary (refill at (now+1)%3==0 -> now=2)
	if !d.PollutionBlocked {
		t.Fatal("over-quota VM must be blocked")
	}
	if d.Punishments != 1 {
		t.Fatalf("punishments = %d", d.Punishments)
	}
	if k.LastMisses(d) != 10_000 || k.LastRate(d) != 1000 {
		t.Fatal("measurement bookkeeping wrong")
	}
	// Earn back over slices: 10000-3000 initial... balance = 3000-10000
	// = -7000; refills add 3000 per slice.
	for now := uint64(1); now < 10; now++ {
		k.EndTick(now)
	}
	if d.PollutionBlocked {
		t.Fatalf("quota should have recovered, balance %v", k.QuotaBalance(d))
	}
}

func TestNoPermitNeverPunished(t *testing.T) {
	d := mkDomain(1, 0) // no permit booked
	k := mkKyoto(d)
	k.Feed([]Measurement{{VM: d, Misses: 1e9}})
	k.EndTick(0)
	if d.PollutionBlocked || d.Punishments != 0 {
		t.Fatal("VM without a permit must never be pollution-punished")
	}
}

func TestQuotaClampWithoutBanking(t *testing.T) {
	d := mkDomain(1, 100)
	k := mkKyoto(d)
	// Many idle slices: balance must stay clamped at one slice's quota.
	for now := uint64(0); now < 30; now++ {
		k.EndTick(now)
	}
	want := 100.0 * machine.TickMillis * machine.TicksPerSlice
	if got := k.QuotaBalance(d); got != want {
		t.Fatalf("clamped balance = %v, want %v", got, want)
	}
}

func TestBankingAccumulates(t *testing.T) {
	d := mkDomain(1, 100)
	k := New(sched.NewCredit(4), WithBanking(4))
	k.Register(d.VCPUs[0])
	for now := uint64(0); now < 30; now++ {
		k.EndTick(now)
	}
	slice := 100.0 * machine.TickMillis * machine.TicksPerSlice
	if got := k.QuotaBalance(d); math.Abs(got-4*slice) > 1e-9 {
		t.Fatalf("banked balance = %v, want %v", got, 4*slice)
	}
}

func TestSteadyStateAtBookedRate(t *testing.T) {
	// A VM polluting exactly at its booked rate must (almost) never be
	// punished in steady state.
	d := mkDomain(1, 100)
	k := mkKyoto(d)
	punished := 0
	for now := uint64(0); now < 300; now++ {
		k.Feed([]Measurement{{VM: d, Misses: 100 * machine.TickMillis}})
		k.EndTick(now)
		if d.PollutionBlocked {
			punished++
		}
	}
	if punished > 3 {
		t.Fatalf("VM at booked rate punished %d/300 ticks", punished)
	}
}

func TestSustainedOverbookedRateIsThrottled(t *testing.T) {
	d := mkDomain(1, 100)
	k := mkKyoto(d)
	blockedTicks := 0
	for now := uint64(0); now < 300; now++ {
		misses := 0.0
		if !d.PollutionBlocked {
			misses = 3 * 100 * machine.TickMillis // 3x the permit
		}
		k.Feed([]Measurement{{VM: d, Misses: misses}})
		k.EndTick(now)
		if d.PollutionBlocked {
			blockedTicks++
		}
	}
	// At 3x the rate, the VM should be blocked roughly 2/3 of the time.
	if blockedTicks < 150 || blockedTicks > 280 {
		t.Fatalf("blocked %d/300 ticks, want ~200", blockedTicks)
	}
}

func TestOverheadConfigurable(t *testing.T) {
	k := New(sched.NewCredit(4))
	if k.TickOverheadCycles() != DefaultOverheadCycles {
		t.Fatal("default overhead wrong")
	}
	k2 := New(sched.NewCredit(4), WithOverheadCycles(7))
	if k2.TickOverheadCycles() != 7 {
		t.Fatal("overhead option ignored")
	}
}

func TestVMsReturnsCopy(t *testing.T) {
	d := mkDomain(1, 10)
	k := mkKyoto(d)
	vs := k.VMs()
	if len(vs) != 1 || vs[0] != d {
		t.Fatal("VMs() wrong")
	}
	vs[0] = nil
	if k.VMs()[0] != d {
		t.Fatal("VMs() must return a copy")
	}
}

func TestRankByIndicator(t *testing.T) {
	order := RankByIndicator(map[string]float64{"a": 1, "b": 5, "c": 3})
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
}

func TestUnknownVMMeasurementIgnored(t *testing.T) {
	d := mkDomain(1, 100)
	k := mkKyoto(d)
	ghost := mkDomain(2, 100)
	k.Feed([]Measurement{{VM: ghost, Misses: 1e9}})
	k.EndTick(0) // must not panic or affect d
	if d.PollutionBlocked {
		t.Fatal("unrelated measurement affected registered VM")
	}
}

// TestUnregisterIsIdempotent locks the Remover contract: a double (or
// never-registered) Unregister must not collapse a live VM's ledger.
func TestUnregisterIsIdempotent(t *testing.T) {
	k := New(sched.NewCredit(2))
	domain := &vm.VM{ID: 1, Name: "m", LLCCap: 250, Weight: 256}
	v0 := &vm.VCPU{VM: domain, ID: 1}
	v1 := &vm.VCPU{VM: domain, ID: 2}
	domain.VCPUs = []*vm.VCPU{v0, v1}
	k.Register(v0)
	k.Register(v1)
	k.Unregister(v0)
	k.Unregister(v0) // double removal: must be a no-op
	if got := len(k.VMs()); got != 1 {
		t.Fatalf("ledger collapsed by double Unregister: %d VMs", got)
	}
	if k.QuotaBalance(domain) == 0 {
		t.Fatal("live VM lost its quota ledger")
	}
	k.Unregister(v1) // last real vCPU: now the ledger closes
	if got := len(k.VMs()); got != 0 {
		t.Fatalf("ledger not closed after last vCPU left: %d VMs", got)
	}
}
