package kyoto

// The shardable sweep facade: every multi-configuration experiment in
// the harness (trace sweep, migration sweep, the Figure 4 matrix, the
// ablations) is planned as a list of deterministic jobs that external
// drivers — cron jobs, CI matrices, a handful of machines pointed at the
// same repository — can execute shard by shard and merge bit-identically
// to an unsharded run. See internal/sweep/README.md for the job model
// and the shard envelope schema, and scripts/sweep_shards.sh for a
// ready-made local fan-out.
//
// The division of labour: every process rebuilds the same sweep from the
// same configuration (trace, seed, config struct), so only job *results*
// ever cross process boundaries, as JSON envelopes with per-job
// fingerprints.

import (
	"kyoto/internal/experiments"
	"kyoto/internal/sweep"
)

// Re-exported sweep types.
type (
	// Sweep is a shardable experiment: a deterministic plan of
	// independent jobs plus a merge folding their payloads into the
	// final result. Obtain one from NewTraceSweeper, NewMigrationSweeper
	// or the experiment constructors in internal/experiments.
	Sweep = sweep.Sweep
	// SweepJob is one deterministic unit of a sweep's plan.
	SweepJob = sweep.Job
	// SweepJobResult is one executed job inside a shard envelope.
	SweepJobResult = sweep.JobResult
	// ShardEnvelope is the canonical JSON result of one shard of a
	// sweep — the unit that crosses process and machine boundaries.
	ShardEnvelope = sweep.Envelope
	// TraceSweeper is the shardable form of SweepTrace.
	TraceSweeper = experiments.TraceSweeper
	// MigrationSweeper is the shardable form of SweepMigrations.
	MigrationSweeper = experiments.MigrationSweeper
)

// NewTraceSweeper returns the three-placer trace sweep as a shardable
// Sweep; after merging, its Result method returns the TraceSweepResult
// that SweepTrace would have produced.
func NewTraceSweeper(tr Trace, cfg TraceSweepConfig) (*TraceSweeper, error) {
	return experiments.NewTraceSweeper(tr, cfg)
}

// NewMigrationSweeper returns the rebalancer x placer migration sweep as
// a shardable Sweep; after merging, its Result method returns the
// MigrationSweepResult that SweepMigrations would have produced.
func NewMigrationSweeper(tr Trace, cfg MigrationSweepConfig) (*MigrationSweeper, error) {
	return experiments.NewMigrationSweeper(tr, cfg)
}

// SweepJobs returns the sweep's canonical job plan — what a distributed
// driver partitions across processes. Shard k of n owns the jobs with
// Index % n == k, which is exactly what RunSweepShard executes.
func SweepJobs(s Sweep) []SweepJob { return s.Plan() }

// RunSweepShard executes shard `shard` of `shards` of the sweep's plan
// across `workers` goroutines (0 = GOMAXPROCS) and returns its envelope.
// Write it with ShardEnvelope.WriteFile and merge all n envelopes with
// MergeShards — on this machine or another one.
func RunSweepShard(s Sweep, shard, shards, workers int) (ShardEnvelope, error) {
	return sweep.Engine{Workers: workers}.RunShard(s, shard, shards)
}

// RunSweep executes the whole sweep in-process and merges the result —
// the single-machine path, bit-identical to a sharded run of the same
// sweep.
func RunSweep(s Sweep, workers int) error {
	return sweep.Engine{Workers: workers}.Run(s)
}

// MergeShards validates that the envelopes cover every job of the
// sweep's plan exactly once and folds them into the sweep's final result
// (retrievable from the concrete sweeper). The sweep must be built from
// the same configuration as the one the shards ran.
func MergeShards(s Sweep, envs []ShardEnvelope) error {
	return sweep.Merge(s, envs)
}

// MergedSweepFingerprint folds a complete envelope set's per-job
// fingerprints in plan order — the whole-sweep identity the shard
// determinism goldens pin.
func MergedSweepFingerprint(envs []ShardEnvelope) (string, error) {
	return sweep.MergedFingerprint(envs)
}

// ReadShardEnvelope parses one shard envelope file.
func ReadShardEnvelope(path string) (ShardEnvelope, error) {
	return sweep.ReadEnvelope(path)
}

// ReadShardEnvelopes expands glob patterns (a literal path matches
// itself) and parses every matched envelope, in sorted path order.
func ReadShardEnvelopes(patterns []string) ([]ShardEnvelope, error) {
	return sweep.ReadEnvelopes(patterns)
}

// ParseShardSpec parses a "k/n" shard flag value into (shard, shards).
func ParseShardSpec(s string) (shard, shards int, err error) {
	return sweep.ParseShardSpec(s)
}
