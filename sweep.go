package kyoto

// The shardable sweep facade: every multi-configuration experiment in
// the harness (trace sweep, migration sweep, the Figure 4 matrix, the
// ablations) is planned as a list of deterministic jobs that external
// drivers — cron jobs, CI matrices, a handful of machines pointed at the
// same repository — can execute shard by shard and merge bit-identically
// to an unsharded run. See internal/sweep/README.md for the job model
// and the shard envelope schema, and scripts/sweep_shards.sh for a
// ready-made local fan-out.
//
// The division of labour: every process rebuilds the same sweep from the
// same configuration (trace, seed, config struct), so only job *results*
// ever cross process boundaries, as JSON envelopes with per-job
// fingerprints.

import (
	"kyoto/internal/experiments"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
)

// Re-exported sweep types.
type (
	// Sweep is a shardable experiment: a deterministic plan of
	// independent jobs plus a merge folding their payloads into the
	// final result. Obtain one from NewTraceSweeper, NewMigrationSweeper
	// or the experiment constructors in internal/experiments.
	Sweep = sweep.Sweep
	// SweepJob is one deterministic unit of a sweep's plan.
	SweepJob = sweep.Job
	// SweepJobResult is one executed job inside a shard envelope.
	SweepJobResult = sweep.JobResult
	// ShardEnvelope is the canonical JSON result of one shard of a
	// sweep — the unit that crosses process and machine boundaries.
	ShardEnvelope = sweep.Envelope
	// TraceSweeper is the shardable form of SweepTrace.
	TraceSweeper = experiments.TraceSweeper
	// MigrationSweeper is the shardable form of SweepMigrations.
	MigrationSweeper = experiments.MigrationSweeper
	// SeedableSweep is a sweep that can be replicated under different RNG
	// seeds and report scalar metrics; TraceSweeper and MigrationSweeper
	// implement it.
	SeedableSweep = sweep.Seedable
	// SeedSweeper replicates a SeedableSweep across consecutive seeds and
	// aggregates its metrics into distributions with confidence
	// intervals. It is itself a Sweep, so seed sweeps shard and merge
	// through the same envelope machinery.
	SeedSweeper = sweep.SeedSweeper
	// SeedSweepConfig parameterizes NewSeedSweeper.
	SeedSweepConfig = sweep.SeedSweepConfig
	// SeedSweepResult is a merged seed sweep: per-(arm, metric) sample
	// distributions over all seeds.
	SeedSweepResult = sweep.SeedSweepResult
	// SeedSweepArm is one arm's per-metric distributions.
	SeedSweepArm = sweep.SeedSweepArm
	// MetricSummary is one metric's across-seed sample distribution, with
	// mean/percentile/CI accessors.
	MetricSummary = stats.Summary
	// SweepTable is a rendered experiment table (String gives ASCII).
	SweepTable = experiments.Table
)

// NewTraceSweeper returns the three-placer trace sweep as a shardable
// Sweep; after merging, its Result method returns the TraceSweepResult
// that SweepTrace would have produced.
func NewTraceSweeper(tr Trace, cfg TraceSweepConfig) (*TraceSweeper, error) {
	return experiments.NewTraceSweeper(tr, cfg)
}

// NewMigrationSweeper returns the rebalancer x placer migration sweep as
// a shardable Sweep; after merging, its Result method returns the
// MigrationSweepResult that SweepMigrations would have produced.
func NewMigrationSweeper(tr Trace, cfg MigrationSweepConfig) (*MigrationSweeper, error) {
	return experiments.NewMigrationSweeper(tr, cfg)
}

// NewSeedSweeper wraps a seedable sweep (NewTraceSweeper,
// NewMigrationSweeper) in a seed sweep: replication i of cfg.Seeds runs
// the whole inner sweep under seed cfg.BaseSeed+i, and the merged
// result reports each metric's across-seed mean, percentiles and
// confidence intervals. Because the seed sweep is itself a Sweep, it
// shards with RunSweepShard and merges with MergeShards like any other
// — and the merged statistics are bit-identical for every shard count.
func NewSeedSweeper(proto SeedableSweep, cfg SeedSweepConfig) (*SeedSweeper, error) {
	return sweep.NewSeedSweeper(proto, cfg)
}

// SeedSweepTable renders a merged seed sweep as the arm x metric
// statistics table the CLIs print (mean ± CI, p50/p95/p99 with
// bootstrap CIs).
func SeedSweepTable(r *SeedSweepResult) (SweepTable, error) {
	return experiments.SeedSweepTable(r)
}

// FormatMeanCI renders a mean and CI half-width in the "0.540 ± 0.030"
// form the seed-sweep tables and README use.
func FormatMeanCI(mean, halfwidth float64) string {
	return stats.FormatMeanCI(mean, halfwidth)
}

// SweepJobs returns the sweep's canonical job plan — what a distributed
// driver partitions across processes. Shard k of n owns the jobs with
// Index % n == k, which is exactly what RunSweepShard executes.
func SweepJobs(s Sweep) []SweepJob { return s.Plan() }

// RunSweepShard executes shard `shard` of `shards` of the sweep's plan
// across `workers` goroutines (0 = GOMAXPROCS) and returns its envelope.
// Write it with ShardEnvelope.WriteFile and merge all n envelopes with
// MergeShards — on this machine or another one.
func RunSweepShard(s Sweep, shard, shards, workers int) (ShardEnvelope, error) {
	return sweep.Engine{Workers: workers}.RunShard(s, shard, shards)
}

// RunSweepShardResumable is RunSweepShard with job-level checkpointing:
// completed jobs are rewritten to the file at path (atomically) after
// every `every` fresh completions, and a file already present there must
// be a checkpoint of this exact sweep configuration and shard slice,
// whose completed jobs are reused without re-running. The final envelope
// is byte-identical to an uninterrupted RunSweepShard. Returns the
// envelope plus how many jobs were resumed from the checkpoint.
func RunSweepShardResumable(s Sweep, shard, shards, workers int, path string, every int) (ShardEnvelope, int, error) {
	return sweep.Engine{Workers: workers}.RunShardResumable(s, shard, shards, path, every)
}

// RunSweep executes the whole sweep in-process and merges the result —
// the single-machine path, bit-identical to a sharded run of the same
// sweep.
func RunSweep(s Sweep, workers int) error {
	return sweep.Engine{Workers: workers}.Run(s)
}

// MergeShards validates that the envelopes cover every job of the
// sweep's plan exactly once and folds them into the sweep's final result
// (retrievable from the concrete sweeper). The sweep must be built from
// the same configuration as the one the shards ran.
func MergeShards(s Sweep, envs []ShardEnvelope) error {
	return sweep.Merge(s, envs)
}

// MergedSweepFingerprint folds a complete envelope set's per-job
// fingerprints in plan order — the whole-sweep identity the shard
// determinism goldens pin.
func MergedSweepFingerprint(envs []ShardEnvelope) (string, error) {
	return sweep.MergedFingerprint(envs)
}

// ReadShardEnvelope parses one shard envelope file.
func ReadShardEnvelope(path string) (ShardEnvelope, error) {
	return sweep.ReadEnvelope(path)
}

// ReadShardEnvelopes expands glob patterns (a literal path matches
// itself) and parses every matched envelope, in sorted path order.
func ReadShardEnvelopes(patterns []string) ([]ShardEnvelope, error) {
	return sweep.ReadEnvelopes(patterns)
}

// ParseShardSpec parses a "k/n" shard flag value into (shard, shards).
func ParseShardSpec(s string) (shard, shards int, err error) {
	return sweep.ParseShardSpec(s)
}
