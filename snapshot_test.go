package kyoto

// Differential coverage of the public checkpoint API: for a spread of
// world shapes (every scheduler kind, Kyoto enforcement on and off, both
// fidelity tiers) and for a placed-and-running cluster, Snapshot +
// Resume mid-run must continue bit-identically to the uninterrupted run,
// and re-snapshotting a freshly resumed world must reproduce the
// checkpoint byte for byte.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"kyoto/internal/pmc"
)

// worldPrint folds every VM's lifetime counters and punishments — the
// whole observable outcome of a run.
func worldPrint(w *World) string {
	h := pmc.FoldSeed
	for _, v := range w.VMs() {
		h = v.Counters().Fold(h)
		h = pmc.FoldUint64(h, v.Punishments)
	}
	return fmt.Sprintf("%016x", h)
}

// clusterPrint folds every host in fleet order.
func clusterPrint(c *Cluster) string {
	h := pmc.FoldSeed
	for i := 0; i < c.Hosts(); i++ {
		for _, v := range c.Host(i).VMs() {
			h = v.Counters().Fold(h)
			h = pmc.FoldUint64(h, v.Punishments)
		}
	}
	return fmt.Sprintf("%016x", h)
}

// snapshotConfigs spans the world shapes whose scheduler and monitor
// state differ: each scheduler kind, Kyoto enforcement, and the analytic
// tier.
func snapshotConfigs() map[string]WorldConfig {
	return map[string]WorldConfig{
		"credit":         {Seed: 7, Scheduler: CreditScheduler},
		"cfs":            {Seed: 7, Scheduler: CFSScheduler},
		"pisces":         {Seed: 7, Scheduler: PiscesScheduler},
		"kyoto":          {Seed: 7, EnableKyoto: true},
		"kyoto-analytic": {Seed: 7, EnableKyoto: true, Fidelity: FidelityAnalytic},
	}
}

func populate(t *testing.T, w *World) {
	t.Helper()
	specs := []VMSpec{
		{Name: "victim", App: "gcc", Pins: []int{0}, LLCCap: 250},
		{Name: "noisy", App: "lbm", Pins: []int{1}, LLCCap: 250},
		{Name: "mixed", App: "omnetpp", Pins: []int{2}, LLCCap: 250},
	}
	for _, s := range specs {
		if _, err := w.AddVM(s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotResumeBitIdentity(t *testing.T) {
	const total = 50
	for name, cfg := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			ref, err := NewWorld(cfg)
			if err != nil {
				t.Fatal(err)
			}
			populate(t, ref)
			ref.RunTicks(total)
			want := worldPrint(ref)

			for _, snapTick := range []int{0, 13, 37} {
				w, err := NewWorld(cfg)
				if err != nil {
					t.Fatal(err)
				}
				populate(t, w)
				w.RunTicks(snapTick)
				data, err := Snapshot(w)
				if err != nil {
					t.Fatalf("tick %d: %v", snapTick, err)
				}

				// The snapshotted world keeps running, unperturbed.
				w.RunTicks(total - snapTick)
				if got := worldPrint(w); got != want {
					t.Fatalf("tick %d: snapshotting perturbed the run: %s vs %s", snapTick, got, want)
				}

				// The resumed world lands on the identical future.
				r, err := Resume(cfg, data)
				if err != nil {
					t.Fatalf("tick %d: resume: %v", snapTick, err)
				}
				if r.Now() != uint64(snapTick) {
					t.Fatalf("tick %d: resumed clock at %d", snapTick, r.Now())
				}
				again, err := Snapshot(r)
				if err != nil {
					t.Fatalf("tick %d: re-snapshot: %v", snapTick, err)
				}
				if !bytes.Equal(again, data) {
					t.Fatalf("tick %d: Snapshot(Resume(snap)) differs from snap", snapTick)
				}
				r.RunTicks(total - snapTick)
				if got := worldPrint(r); got != want {
					t.Fatalf("tick %d: resumed run diverged: %s vs %s", snapTick, got, want)
				}
			}
		})
	}
}

// TestResumeConfigMismatch: a snapshot taken under one configuration
// must refuse to resume under any other — seed, fidelity, scheduler and
// Kyoto enforcement all participate in the digest.
func TestResumeConfigMismatch(t *testing.T) {
	base := WorldConfig{Seed: 7, EnableKyoto: true}
	w, err := NewWorld(base)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, w)
	w.RunTicks(10)
	data, err := Snapshot(w)
	if err != nil {
		t.Fatal(err)
	}

	bad := map[string]WorldConfig{
		"seed":      {Seed: 8, EnableKyoto: true},
		"fidelity":  {Seed: 7, EnableKyoto: true, Fidelity: FidelityAnalytic},
		"scheduler": {Seed: 7, EnableKyoto: true, Scheduler: CFSScheduler},
		"kyoto-off": {Seed: 7},
	}
	for name, cfg := range bad {
		if _, err := Resume(cfg, data); err == nil {
			t.Errorf("%s mismatch: resume succeeded", name)
		} else if !strings.Contains(err.Error(), "configuration") {
			t.Errorf("%s mismatch: error does not point at the configuration: %v", name, err)
		}
	}

	// The matching config still works.
	if _, err := Resume(base, data); err != nil {
		t.Fatalf("matching config refused: %v", err)
	}
}

// TestSnapshotShadowMonitor: the trace-replay monitor is not
// checkpointable and must say so, at snapshot and at resume.
func TestSnapshotShadowMonitor(t *testing.T) {
	cfg := WorldConfig{Seed: 7, EnableKyoto: true, Monitor: MonitorShadowSim}
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Snapshot(w); err == nil {
		t.Fatal("snapshotting a shadow-sim world succeeded")
	}
	if _, err := Resume(cfg, []byte("{}")); err == nil {
		t.Fatal("resuming into a shadow-sim world succeeded")
	}
}

func TestClusterSnapshotRoundTrip(t *testing.T) {
	cfg := ClusterConfig{
		Hosts:  2,
		World:  WorldConfig{Seed: 7, EnableKyoto: true},
		Placer: PlacerKyoto,
	}
	build := func() *Cluster {
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps := []string{"gcc", "lbm", "omnetpp", "blockie"}
		for i, app := range apps {
			spec := ClusterVMSpec{VMSpec: VMSpec{Name: fmt.Sprintf("vm%d", i), App: app, LLCCap: 200}}
			if _, err := c.Place(spec); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}

	ref := build()
	ref.RunTicks(40)
	want := clusterPrint(ref)

	c := build()
	c.RunTicks(15)
	data, err := SnapshotCluster(c)
	if err != nil {
		t.Fatal(err)
	}
	c.RunTicks(25)
	if got := clusterPrint(c); got != want {
		t.Fatalf("snapshotting perturbed the cluster: %s vs %s", got, want)
	}

	r, err := ResumeCluster(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SnapshotCluster(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("SnapshotCluster(ResumeCluster(snap)) differs from snap")
	}
	r.RunTicks(25)
	if got := clusterPrint(r); got != want {
		t.Fatalf("resumed cluster diverged: %s vs %s", got, want)
	}

	// Workers is concurrency, not physics: a different worker count must
	// resume the same snapshot and land on the same future.
	alt := cfg
	alt.Workers = 1
	r2, err := ResumeCluster(alt, data)
	if err != nil {
		t.Fatalf("resume with different Workers refused: %v", err)
	}
	r2.RunTicks(25)
	if got := clusterPrint(r2); got != want {
		t.Fatalf("single-worker resume diverged: %s vs %s", got, want)
	}

	// A different fleet shape must not.
	alt = cfg
	alt.Hosts = 3
	if _, err := ResumeCluster(alt, data); err == nil {
		t.Fatal("resume onto a different fleet size succeeded")
	}
}
