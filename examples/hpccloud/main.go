// Command hpccloud walks the paper's HPC-cloud motivation (§1, §5): a
// latency-sensitive HPC solver co-located with an increasing number of
// noisy batch neighbours. It reports the solver's predictability — mean
// and spread of per-window IPC — under the plain credit scheduler and
// under KS4Xen, reproducing the spirit of Figures 5 and 6 in one run.
//
// Run it with:
//
//	go run ./examples/hpccloud
package main

import (
	"fmt"
	"log"
	"math"

	"kyoto"
)

// windowTicks is one measurement window (10 slices).
const windowTicks = 30

func main() {
	log.SetFlags(0)

	fmt.Println("HPC cloud scenario: 'solver' (soplex-like) vs N noisy neighbours")
	fmt.Println("(blockie-like wipers, 50-misses/ms permits). Predictability is the")
	fmt.Println("coefficient of variation (CV) of the solver's per-window IPC.")
	fmt.Println()
	fmt.Printf("%-12s %-10s %-12s %-10s %-12s\n", "neighbours", "XCS mean", "XCS CV%", "KS4X mean", "KS4X CV%")

	for _, n := range []int{1, 3, 7, 11} {
		plainMean, plainCV, err := run(n, false)
		if err != nil {
			log.Fatalf("hpccloud: %v", err)
		}
		kyotoMean, kyotoCV, err := run(n, true)
		if err != nil {
			log.Fatalf("hpccloud: %v", err)
		}
		fmt.Printf("%-12d %-10.4f %-12.1f %-10.4f %-12.1f\n",
			n, plainMean, plainCV, kyotoMean, kyotoCV)
	}
	fmt.Println()
	fmt.Println("KS4Xen keeps both the level and the variance of the solver's")
	fmt.Println("performance stable as neighbours multiply — the predictability")
	fmt.Println("HPC tenants need before they move to the cloud.")
}

// run measures the solver's per-window IPC over several windows.
func run(neighbours int, enableKyoto bool) (mean, cv float64, err error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 7, EnableKyoto: enableKyoto})
	if err != nil {
		return 0, 0, err
	}
	solver, err := w.AddVM(kyoto.VMSpec{Name: "solver", App: "soplex", Pins: []int{0}, LLCCap: 1500})
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < neighbours; i++ {
		spec := kyoto.VMSpec{
			Name:   fmt.Sprintf("noise%d", i),
			App:    "blockie",
			LLCCap: 50,
		}
		if _, err := w.AddVM(spec); err != nil {
			return 0, 0, err
		}
	}

	w.RunTicks(windowTicks) // warmup
	var samples []float64
	prev := solver.Counters()
	for i := 0; i < 6; i++ {
		w.RunTicks(windowTicks)
		cur := solver.Counters()
		samples = append(samples, cur.Delta(prev).IPC())
		prev = cur
	}

	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	var varsum float64
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	sd := math.Sqrt(varsum / float64(len(samples)))
	if mean > 0 {
		cv = 100 * sd / mean
	}
	return mean, cv, nil
}
