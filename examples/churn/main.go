// Command churn walks the fleet lifecycle API end to end: a seeded
// synthetic arrival/departure trace (Poisson-style arrivals, heavy-tailed
// lifetimes over a mixed quiet/polluter tenant population) is replayed on
// a heterogeneous fleet — three Table-1-class hosts plus one big-memory,
// big-permit host — first under contention-blind first-fit, then under
// Kyoto admission with per-host permit enforcement.
//
// This is the regime where public-cloud studies locate tail
// unpredictability: tenants come and go, fleets are not uniform, and no
// placer can know future co-runners. The example prints each policy's
// rejection rate, utilization and per-VM normalized performance floor,
// showing what permits buy when the population never stops changing.
//
// Run it with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"

	"kyoto"
)

func main() {
	log.SetFlags(0)

	// One trace, every policy: 18 VMs over ~1.5 simulated seconds.
	trace := kyoto.SynthesizeTrace(kyoto.ChurnConfig{
		Seed:         11,
		VMs:          18,
		Horizon:      100,
		MeanLifetime: 40,
	})
	last := trace.Events[len(trace.Events)-1]
	fmt.Printf("trace: %d VMs, arrivals over %d ticks, heavy-tailed lifetimes\n\n",
		len(trace.Events), last.Submit)

	// A heterogeneous 4-host fleet: host 3 has double the memory and
	// permit budget (a "big" instance-type host).
	cluster := func(placer kyoto.PlacerKind, enforce bool) kyoto.ClusterConfig {
		return kyoto.ClusterConfig{
			Hosts:  4,
			World:  kyoto.WorldConfig{Seed: 11, EnableKyoto: enforce},
			Placer: placer,
			HostOverrides: map[int]kyoto.HostOverride{
				3: {MemoryMB: 1012, LLCBudget: 2000},
			},
		}
	}

	for _, arm := range []struct {
		name    string
		placer  kyoto.PlacerKind
		enforce bool
	}{
		{"first-fit (unprotected)", kyoto.PlacerFirstFit, false},
		{"kyoto admission + enforcement", kyoto.PlacerKyoto, true},
	} {
		res, err := kyoto.ReplayTrace(cluster(arm.placer, arm.enforce), trace,
			kyoto.ReplayOptions{DrainTicks: 30})
		if err != nil {
			log.Fatalf("churn: %v", err)
		}
		fmt.Printf("%s:\n", arm.name)
		fmt.Printf("  placed %d, rejected %d (%.0f%%), mean CPU utilization %.0f%%\n",
			res.Placed, res.Rejected, 100*res.RejectionRate(), 100*res.CPUUtilization)
		for _, rec := range res.Records {
			if rec.Rejected {
				fmt.Printf("  rejected t=%d %s (%s)\n", rec.Submit, rec.Name, rec.App)
			}
		}
		fmt.Printf("  deterministic fingerprint: %s\n\n", res.Fingerprint())
	}

	fmt.Println("For the full three-placer comparison table (rejection rate,")
	fmt.Println("utilization, p50/p95/p99 normalized performance), run:")
	fmt.Println()
	fmt.Println("  go run ./cmd/kyotosim -churn 18 -hosts 4 -seed 11")
}
