// Command placement contrasts the two solution families from the paper's
// related-work section on one concrete fleet: contention-aware VM
// placement (spread the polluters; an NP-hard bin-packing the paper
// criticizes) versus Kyoto permits (co-locate freely; the scheduler
// enforces pollution budgets).
//
// Four VMs must share two 2-core hosts. With two polluters in the mix, the
// best placement can at most separate them from one victim each; Kyoto
// instead makes any placement safe.
//
// Run it with:
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"kyoto"
)

// app fleet: two sensitive, two disruptive.
var fleet = []struct {
	name string
	app  string
}{
	{"sen1", "gcc"},
	{"sen2", "omnetpp"},
	{"dis1", "lbm"},
	{"dis2", "blockie"},
}

func main() {
	log.SetFlags(0)

	solo := map[string]float64{}
	for _, f := range fleet {
		ipc, err := soloRun(f.app)
		if err != nil {
			log.Fatalf("placement: %v", err)
		}
		solo[f.name] = ipc
	}

	fmt.Println("Fleet: gcc + omnetpp (sensitive), lbm + blockie (polluters);")
	fmt.Println("two 2-core hosts; normalized performance of the sensitive VMs.")
	fmt.Println()
	fmt.Printf("%-34s %-12s %-12s %-8s\n", "strategy", "sen1 norm", "sen2 norm", "worst")

	// Naive placement: both sensitive VMs land with a polluter each —
	// the placement a contention-blind scheduler produces.
	report("naive placement (sen+dis per host)", [][2]int{{0, 2}, {1, 3}}, false, solo)
	// Contention-aware placement: polluters paired together, sensitive
	// VMs share the other host — the best a placer can do here.
	report("contention-aware placement", [][2]int{{0, 1}, {2, 3}}, false, solo)
	// Kyoto: the naive placement again, but with permits enforced.
	report("naive placement + Kyoto permits", [][2]int{{0, 2}, {1, 3}}, true, solo)

	fmt.Println()
	fmt.Println("Placement can rescue this fleet only by dedicating a host to the")
	fmt.Println("polluters; with more tenants than spare hosts that stops working")
	fmt.Println("(and optimal placement is NP-hard). Permits make the naive")
	fmt.Println("placement perform like the contention-aware one.")
}

// report runs both hosts of a placement and prints the sensitive rows.
// pairs lists fleet indexes per host.
func report(label string, pairs [][2]int, enableKyoto bool, solo map[string]float64) {
	norm := map[string]float64{}
	for _, pair := range pairs {
		ipcs, err := hostRun(pair, enableKyoto)
		if err != nil {
			log.Fatalf("placement: %v", err)
		}
		for name, ipc := range ipcs {
			norm[name] = ipc / solo[name]
		}
	}
	worst := 1.0
	for _, f := range fleet[:2] {
		if norm[f.name] < worst {
			worst = norm[f.name]
		}
	}
	fmt.Printf("%-34s %-12.2f %-12.2f %-8.2f\n", label, norm["sen1"], norm["sen2"], worst)
}

// soloRun measures one app alone on a host.
func soloRun(app string) (float64, error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 11})
	if err != nil {
		return 0, err
	}
	v, err := w.AddVM(kyoto.VMSpec{Name: "solo", App: app, Pins: []int{0}})
	if err != nil {
		return 0, err
	}
	w.RunTicks(45)
	return v.Counters().IPC(), nil
}

// hostRun co-locates two fleet members on one simulated host and returns
// their IPCs by fleet name.
func hostRun(pair [2]int, enableKyoto bool) (map[string]float64, error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 11, EnableKyoto: enableKyoto})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	vms := make([]*kyoto.VM, 2)
	for i, idx := range pair {
		f := fleet[idx]
		vms[i], err = w.AddVM(kyoto.VMSpec{
			Name: f.name, App: f.app, Pins: []int{i}, LLCCap: 250,
		})
		if err != nil {
			return nil, err
		}
	}
	w.RunTicks(45)
	for i, idx := range pair {
		out[fleet[idx].name] = vms[i].Counters().IPC()
	}
	return out, nil
}
