// Command placement contrasts the two solution families from the paper's
// related-work section on one concrete fleet, using the cluster API:
// contention-aware VM placement (spread the polluters; an NP-hard
// bin-packing the paper criticizes) versus Kyoto permits (co-locate
// freely; the scheduler enforces pollution budgets).
//
// Four VMs arrive at a two-host cluster. A contention-blind first-fit
// placer packs both polluters next to the sensitive VMs; the
// contention-aware spread placer separates them using Figure-4
// aggressiveness data (knowledge a real IaaS lacks); Kyoto admission
// takes the same naive first-fit placement and makes it safe with
// permits.
//
// Run it with:
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"log"

	"kyoto"
)

// arrival fleet: interleaved so first-fit pairs each sensitive VM with a
// polluter — the worst case placement-blind packing produces.
var fleet = []struct {
	name string
	app  string
}{
	{"sen1", "gcc"},
	{"dis1", "lbm"},
	{"sen2", "omnetpp"},
	{"dis2", "blockie"},
}

func main() {
	log.SetFlags(0)

	solo := map[string]float64{}
	for _, f := range fleet {
		ipc, err := soloRun(f.app)
		if err != nil {
			log.Fatalf("placement: %v", err)
		}
		solo[f.name] = ipc
	}

	fmt.Println("Fleet: gcc + omnetpp (sensitive), lbm + blockie (polluters),")
	fmt.Println("arriving interleaved at two 2-core hosts; normalized performance")
	fmt.Println("of the sensitive VMs.")
	fmt.Println()
	fmt.Printf("%-36s %-10s %-10s %-10s %-8s\n", "strategy", "placement", "sen1 norm", "sen2 norm", "worst")

	type strategy struct {
		label  string
		placer kyoto.PlacerKind
		permit bool
	}
	for _, s := range []strategy{
		// First-fit packs in arrival order: each host gets one sensitive
		// VM and one polluter.
		{"first-fit (contention-blind)", kyoto.PlacerFirstFit, false},
		// Spread balances Figure-4 aggressiveness: the polluters land on
		// different hosts, but so do the sensitive VMs — with two
		// polluters and two hosts somebody always shares with one.
		// Spread's real weakness is needing every app's behaviour up
		// front; here it also simply runs out of quiet hosts.
		{"spread (contention-aware)", kyoto.PlacerSpread, false},
		// Kyoto: identical first-fit placement, but llc_cap permits are
		// booked at admission and enforced by each host's scheduler.
		{"first-fit + Kyoto permits", kyoto.PlacerKyoto, true},
	} {
		if err := report(s.label, s.placer, s.permit, solo); err != nil {
			log.Fatalf("placement: %v", err)
		}
	}

	fmt.Println()
	fmt.Println("Placement can only rescue a fleet while there are spare quiet")
	fmt.Println("hosts, and choosing optimally is NP-hard with knowledge nobody")
	fmt.Println("has. Permits make the naive placement itself safe.")
}

// report builds a cluster of two 2-core hosts behind the given placer,
// places the fleet, runs it, and prints the sensitive VMs' normalized
// performance.
func report(label string, placer kyoto.PlacerKind, permits bool, solo map[string]float64) error {
	mcfg := kyoto.TableOneMachine(11)
	mcfg.CoresPerSocket = 2 // the example's two 2-core hosts
	c, err := kyoto.NewCluster(kyoto.ClusterConfig{
		Hosts:  2,
		World:  kyoto.WorldConfig{Machine: mcfg, Seed: 11, EnableKyoto: permits},
		Placer: placer,
	})
	if err != nil {
		return err
	}
	placedOn := map[string]int{}
	perHostCore := map[int]int{}
	for _, f := range fleet {
		// Every VM books the paper's permit; it is enforced only on the
		// Kyoto arm and bin-packed only by the admission placer.
		spec := kyoto.VMSpec{Name: f.name, App: f.app, LLCCap: 250}
		p, err := c.Place(kyoto.ClusterVMSpec{VMSpec: spec})
		if err != nil {
			return err
		}
		placedOn[f.name] = p.HostID
		// Pin within the host in placement order.
		p.VM.VCPUs[0].Pin = perHostCore[p.HostID]
		perHostCore[p.HostID]++
	}
	c.RunTicks(45)

	norm := map[string]float64{}
	for _, f := range fleet {
		v, _ := c.FindVM(f.name)
		norm[f.name] = v.Counters().IPC() / solo[f.name]
	}
	worst := 1.0
	for _, name := range []string{"sen1", "sen2"} {
		if norm[name] < worst {
			worst = norm[name]
		}
	}
	layout := fmt.Sprintf("%d%d|%d%d",
		placedOn["sen1"], placedOn["dis1"], placedOn["sen2"], placedOn["dis2"])
	fmt.Printf("%-36s %-10s %-10.2f %-10.2f %-8.2f\n", label, layout, norm["sen1"], norm["sen2"], worst)
	return nil
}

// soloRun measures one app alone on a host.
func soloRun(app string) (float64, error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 11})
	if err != nil {
		return 0, err
	}
	v, err := w.AddVM(kyoto.VMSpec{Name: "solo", App: app, Pins: []int{0}})
	if err != nil {
		return 0, err
	}
	w.RunTicks(45)
	return v.Counters().IPC(), nil
}
