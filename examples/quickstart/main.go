// Command quickstart is the smallest useful Kyoto scenario: one sensitive
// VM and one polluting VM on the paper's Table-1 machine, with and without
// pollution permits, showing the performance isolation the Kyoto principle
// buys.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"kyoto"
)

func main() {
	log.SetFlags(0)

	soloIPC, err := soloBaseline()
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Println("Scenario: 'web' (gcc-like, cache sensitive) shares the LLC")
	fmt.Println("with 'batch' (lbm-like streaming polluter), 45 ticks each.")
	fmt.Println()
	for _, enable := range []bool{false, true} {
		ipc, punishments, err := contendedRun(enable)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		mode := "plain Xen credit scheduler"
		if enable {
			mode = "KS4Xen (polluters pay)"
		}
		fmt.Printf("%-30s web IPC %.4f (%.0f%% of solo)  batch punishments %d\n",
			mode, ipc, 100*ipc/soloIPC, punishments)
	}
	fmt.Println()
	fmt.Println("With a 250-misses/ms permit booked for both VMs, the polluter is")
	fmt.Println("deprived of the CPU whenever it exceeds its permit, and the")
	fmt.Println("sensitive VM's performance is restored to its solo level.")
}

// soloBaseline measures the sensitive app running alone.
func soloBaseline() (float64, error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 1})
	if err != nil {
		return 0, err
	}
	web, err := w.AddVM(kyoto.VMSpec{Name: "web", App: "gcc", Pins: []int{0}})
	if err != nil {
		return 0, err
	}
	w.RunTicks(45)
	return web.Counters().IPC(), nil
}

// contendedRun co-locates the two VMs, optionally under Kyoto.
func contendedRun(enableKyoto bool) (ipc float64, punishments uint64, err error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 1, EnableKyoto: enableKyoto})
	if err != nil {
		return 0, 0, err
	}
	web, err := w.AddVM(kyoto.VMSpec{Name: "web", App: "gcc", Pins: []int{0}, LLCCap: 250})
	if err != nil {
		return 0, 0, err
	}
	batch, err := w.AddVM(kyoto.VMSpec{Name: "batch", App: "lbm", Pins: []int{1}, LLCCap: 250})
	if err != nil {
		return 0, 0, err
	}
	w.RunTicks(45)
	return web.Counters().IPC(), batch.Punishments, nil
}
