// Command multitenant takes the provider's point of view (the paper's §5
// discussion): instance types carry llc_cap tiers proportional to their
// memory allocation, tenants get billed pollution sanctions when they
// exceed their tier, and the provider sees a per-tenant accounting report
// — the cloud's pay-per-use model extended to the LLC.
//
// Run it with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"kyoto"
)

// instanceType mirrors the §5 idea: permit tiers follow the memory-to-CPU
// ratio of the type (R3-style memory-heavy types get large permits,
// C3-style compute types small ones).
type instanceType struct {
	name   string
	llcCap float64
	weight int64
}

var catalog = []instanceType{
	{name: "r3.large (memory-optimized)", llcCap: 2000, weight: 256},
	{name: "m3.large (general purpose)", llcCap: 500, weight: 256},
	{name: "c3.large (compute-optimized)", llcCap: 100, weight: 256},
}

// tenant is a booked VM.
type tenant struct {
	vmName string
	app    string
	itype  instanceType
}

func main() {
	log.SetFlags(0)

	tenants := []tenant{
		{"alice/db", "mcf", catalog[0]},       // heavy traffic, big permit
		{"bob/render", "lbm", catalog[2]},     // heavy traffic, tiny permit: will pay
		{"carol/api", "gcc", catalog[1]},      // mid permit, light traffic
		{"dave/batch", "blockie", catalog[2]}, // bursty wiper, tiny permit: will pay
	}

	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 3, EnableKyoto: true})
	if err != nil {
		log.Fatalf("multitenant: %v", err)
	}
	vms := make([]*kyoto.VM, len(tenants))
	for i, t := range tenants {
		vms[i], err = w.AddVM(kyoto.VMSpec{
			Name:   t.vmName,
			App:    t.app,
			Weight: t.itype.weight,
			LLCCap: t.itype.llcCap,
		})
		if err != nil {
			log.Fatalf("multitenant: %v", err)
		}
	}

	const ticks = 300 // 3 model seconds
	w.RunTicks(ticks)

	fmt.Println("Host accounting report (3s of model time, 4 cores):")
	fmt.Println()
	fmt.Printf("%-14s %-30s %10s %12s %12s %10s\n",
		"tenant", "instance type", "permit", "measured", "sanctions", "CPU ms")
	ledger := w.Kyoto()
	for i, t := range tenants {
		c := vms[i].Counters()
		fmt.Printf("%-14s %-30s %10.0f %12.1f %12d %10.1f\n",
			t.vmName, t.itype.name, t.itype.llcCap,
			ledger.LastRate(vms[i]), vms[i].Punishments,
			float64(c.WallCycles())/100_000)
	}
	fmt.Println()
	fmt.Println("Tenants polluting beyond their tier (bob, dave) are sanctioned —")
	fmt.Println("they keep their booked CPU share only while within their permit,")
	fmt.Println("so alice's and carol's performance stays predictable. Upgrading")
	fmt.Println("to a memory-optimized type buys a bigger permit, not louder neighbours.")
}
