// Package kyoto is a simulation-backed reproduction of "Mitigating
// performance unpredictability in the IaaS using the Kyoto principle"
// (Tchana et al., Middleware 2016): polluters-pay accounting for
// last-level-cache (LLC) contention between co-located virtual machines.
//
// A VM books a pollution permit (llc_cap) the way it books vCPUs or
// memory; the hypervisor measures each VM's actual pollution from
// performance counters (Equation 1: LLC misses normalized by unhalted
// cycles) and deprives VMs of the processor while they exceed their
// permit. The package bundles everything the paper's evaluation needs:
//
//   - a deterministic simulated testbed (cycle-level cache hierarchy,
//     multicore/NUMA machines, Xen-credit / CFS / Pisces schedulers),
//   - the Kyoto scheduler extension over any of those policies
//     (KS4Xen / KS4Linux / KS4Pisces),
//   - three llc_cap_act monitors (exact per-vCPU counters, trace replay
//     through a McSimA+-style shadow simulator, and socket dedication),
//   - synthetic SPEC CPU2006 / blockie workload models calibrated to the
//     paper's Figure 4 aggressiveness data,
//   - the full experiment harness regenerating every table and figure.
//
// # Quick start
//
//	world, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 1})
//	if err != nil { ... }
//	sen, _ := world.AddVM(kyoto.VMSpec{Name: "web", App: "gcc", LLCCap: 250})
//	dis, _ := world.AddVM(kyoto.VMSpec{Name: "batch", App: "lbm", LLCCap: 250})
//	world.RunTicks(100)
//	fmt.Println(sen.Counters().IPC(), dis.Punishments)
//
// The zero-dependency simulator is deterministic: identical seeds yield
// identical runs, bit for bit.
package kyoto

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/experiments"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Re-exported core types. These aliases are the supported public surface;
// the internal packages behind them are implementation detail.
type (
	// MachineConfig describes a simulated machine (sockets, cores,
	// cache hierarchy, latencies).
	MachineConfig = machine.Config
	// VMSpec declares a VM: its workload, pinning, credit weight, CPU
	// cap, and its Kyoto pollution permit (LLCCap).
	VMSpec = vm.Spec
	// VM is a running domain; Punishments counts pollution sanctions.
	VM = vm.VM
	// VCPU is a virtual CPU.
	VCPU = vm.VCPU
	// Counters is a PMC block (instructions, unhalted cycles, LLC
	// misses, ...).
	Counters = pmc.Counters
	// Profile is a synthetic application model.
	Profile = workload.Profile
	// Phase is one phase of a Profile.
	Phase = workload.Phase
	// Scheduler is a vCPU scheduling policy.
	Scheduler = sched.Scheduler
	// Kyoto is the pollution-enforcing scheduler decorator.
	Kyoto = core.Kyoto
	// Measurement is a per-tick pollution observation fed to Kyoto.
	Measurement = core.Measurement
	// Indicator selects the pollution metric (Equation1 or RawLLCM).
	Indicator = core.Indicator
	// Fidelity selects the cache-model tier (FidelityExact or
	// FidelityAnalytic).
	Fidelity = cache.Fidelity
	// TickHook observes the world once per scheduler tick.
	TickHook = hv.TickHook
)

// Pollution indicators (§4.2 of the paper).
const (
	// Equation1 is llc_misses x cpu_freq_khz / unhalted_core_cycles,
	// the paper's validated indicator.
	Equation1 = core.Equation1
	// RawLLCM is the wall-time-normalized baseline indicator.
	RawLLCM = core.RawLLCM
)

// Cache-model fidelity tiers. The exact tier simulates every memory
// access through the set-associative hierarchy; the analytic tier
// advances a per-owner LLC-occupancy recurrence once per tick and costs
// no per-access work (~100x faster), at the price of modeled rather
// than simulated miss rates.
const (
	// FidelityExact is the per-access cycle-level cache model (default).
	FidelityExact = cache.FidelityExact
	// FidelityAnalytic is the analytic LLC-occupancy fast tier.
	FidelityAnalytic = cache.FidelityAnalytic
)

// ParseFidelity parses "exact", "analytic" or "" (exact).
func ParseFidelity(s string) (Fidelity, error) { return cache.ParseFidelity(s) }

// Cross-validation of the analytic tier against the exact model.
type (
	// CrossValResult is the per-figure, per-metric error report of the
	// analytic tier over the committed goldens.
	CrossValResult = experiments.CrossValResult
	// CrossValCheck is one cross-validated metric with its declared
	// error budget.
	CrossValCheck = experiments.CrossValCheck
)

// CrossValidate runs the committed golden configurations (Figure 1/4,
// the trace and migration sweep goldens, an occupancy scenario) on both
// fidelity tiers and reports each headline metric's analytic-tier error
// against the budgets declared in internal/experiments/crossval.go.
// No figures means all of them; see experiments.CrossValFigures.
func CrossValidate(seed uint64, figures ...string) (*CrossValResult, error) {
	return experiments.CrossValidate(seed, figures...)
}

// SchedulerKind selects the base scheduling policy of a World.
type SchedulerKind int

// Base schedulers (the three systems the paper patched).
const (
	// CreditScheduler is the Xen credit scheduler (XCS).
	CreditScheduler SchedulerKind = iota + 1
	// CFSScheduler is the Linux/KVM completely-fair scheduler.
	CFSScheduler
	// PiscesScheduler is the space-partitioned co-kernel: every vCPU
	// must be pinned and owns its core outright.
	PiscesScheduler
)

// WorldConfig assembles a simulated host.
type WorldConfig struct {
	// Machine is the hardware; the zero value selects the paper's
	// Table 1 machine (TableOneMachine).
	Machine MachineConfig
	// Scheduler picks the base policy (default CreditScheduler).
	Scheduler SchedulerKind
	// EnableKyoto wraps the scheduler with pollution enforcement
	// (KS4Xen / KS4Linux / KS4Pisces) and attaches a monitor.
	EnableKyoto bool
	// Monitor selects the llc_cap_act identification strategy when
	// Kyoto is enabled; the zero value uses the exact per-vCPU counters
	// (what per-core PMCs provide). MonitorShadowSim replays captured
	// traces on a private cache model instead.
	Monitor MonitorKind
	// Indicator is the pollution metric (default Equation1).
	Indicator Indicator
	// Seed drives all randomness; identical seeds reproduce runs
	// exactly. The zero value means seed 1.
	Seed uint64
	// Fidelity selects the cache-model tier (default FidelityExact).
	// FidelityAnalytic is incompatible with MonitorShadowSim, which
	// replays per-access traces the analytic tier does not produce.
	Fidelity Fidelity
}

// MonitorKind selects a pollution monitor.
type MonitorKind int

// Monitors (§3.3 of the paper).
const (
	// MonitorCounters reads each vCPU's performance counters directly.
	MonitorCounters MonitorKind = iota
	// MonitorShadowSim captures per-vCPU access traces and replays them
	// on a dedicated cache model (the McSimA+ strategy).
	MonitorShadowSim
)

// World is a running simulated host.
type World struct {
	inner *hv.World
	kyoto *core.Kyoto

	// oracle is the counter monitor when the config attached one; Snapshot
	// captures its sampler state alongside the hypervisor's.
	oracle *monitor.Oracle
	// cfg is the normalized construction config, retained so Snapshot can
	// digest it into the envelope (Resume must match it exactly).
	cfg WorldConfig
	// shadow marks the trace-replay monitor, whose buffers Snapshot
	// refuses to serialize.
	shadow bool
}

// TableOneMachine returns the scaled replica of the paper's Table 1
// machine (Xeon E5-1603 v3: 4 cores, 10 MB 20-way LLC).
func TableOneMachine(seed uint64) MachineConfig { return machine.TableOne(seed) }

// R420Machine returns the scaled two-socket NUMA PowerEdge R420 used by
// the paper's §4.5 study.
func R420Machine(seed uint64) MachineConfig { return machine.R420(seed) }

// LookupProfile returns a built-in application profile by name ("gcc",
// "lbm", "blockie", ...). See ProfileNames.
func LookupProfile(name string) (Profile, error) { return workload.Lookup(name) }

// ProfileNames lists the built-in application profiles.
func ProfileNames() []string { return workload.Names() }

// normalizeWorldConfig applies the constructor defaults, so two configs
// that build identical worlds compare (and digest) identically.
func normalizeWorldConfig(cfg WorldConfig) WorldConfig {
	// Order matters: the default machine derives its cache seeds from the
	// seed exactly as given (including 0), as NewWorld always has.
	if cfg.Machine.Sockets == 0 {
		cfg.Machine = machine.TableOne(cfg.Seed)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scheduler == 0 {
		cfg.Scheduler = CreditScheduler
	}
	if cfg.EnableKyoto && cfg.Indicator == 0 {
		cfg.Indicator = Equation1
	}
	return cfg
}

// NewWorld builds a simulated host from cfg.
func NewWorld(cfg WorldConfig) (*World, error) {
	cfg = normalizeWorldConfig(cfg)
	cores := cfg.Machine.Sockets * cfg.Machine.CoresPerSocket

	var base sched.Scheduler
	switch cfg.Scheduler {
	case 0, CreditScheduler:
		base = sched.NewCredit(cores)
	case CFSScheduler:
		base = sched.NewCFS()
	case PiscesScheduler:
		base = sched.NewPisces()
	default:
		return nil, fmt.Errorf("kyoto: unknown scheduler kind %d", cfg.Scheduler)
	}

	if cfg.Fidelity == cache.FidelityAnalytic && cfg.EnableKyoto && cfg.Monitor == MonitorShadowSim {
		return nil, fmt.Errorf("kyoto: the shadow-sim monitor replays per-access traces, which the analytic tier does not produce — use MonitorCounters or FidelityExact")
	}

	w := &World{cfg: cfg}
	s := base
	if cfg.EnableKyoto {
		w.kyoto = core.New(base)
		s = w.kyoto
	}
	inner, err := hv.New(hv.Config{Machine: cfg.Machine, Seed: cfg.Seed, Fidelity: cfg.Fidelity}, s)
	if err != nil {
		return nil, err
	}
	w.inner = inner

	if cfg.EnableKyoto {
		switch cfg.Monitor {
		case MonitorCounters:
			w.oracle = monitor.NewOracle(w.kyoto, cfg.Indicator)
			inner.AddHook(w.oracle)
		case MonitorShadowSim:
			w.shadow = true
			inner.AddHook(monitor.NewShadowSim(w.kyoto, cfg.Machine, 0))
		default:
			return nil, fmt.Errorf("kyoto: unknown monitor kind %d", cfg.Monitor)
		}
	}
	return w, nil
}

// AddVM instantiates a VM from spec.
func (w *World) AddVM(spec VMSpec) (*VM, error) { return w.inner.AddVM(spec) }

// RemoveVM tears the named VM down: its vCPUs leave the scheduler, its
// cache lines are evicted, and its Kyoto ledger (if any) is closed. The
// VM's counters stay readable for lifetime statistics.
func (w *World) RemoveVM(name string) error { return w.inner.RemoveVM(name) }

// RunTicks advances the host n scheduler ticks (10 ms of model time each).
func (w *World) RunTicks(n int) { w.inner.RunTicks(n) }

// RunUntil advances until pred holds or maxTicks elapse; it returns the
// ticks run.
func (w *World) RunUntil(pred func(*World) bool, maxTicks int) int {
	return w.inner.RunUntil(func(*hv.World) bool { return pred(w) }, maxTicks)
}

// Now returns the completed tick count.
func (w *World) Now() uint64 { return w.inner.Now() }

// NowMillis returns elapsed model time in milliseconds.
func (w *World) NowMillis() float64 { return w.inner.NowMillis() }

// VMs returns the VMs in creation order.
func (w *World) VMs() []*VM { return w.inner.VMs() }

// FindVM returns the VM with the given name, or nil.
func (w *World) FindVM(name string) *VM { return w.inner.FindVM(name) }

// AddHook attaches a per-tick observer.
func (w *World) AddHook(h TickHook) { w.inner.AddHook(h) }

// Kyoto returns the pollution ledger when EnableKyoto was set, else nil.
// Use it to read quota balances and measured rates.
func (w *World) Kyoto() *Kyoto { return w.kyoto }

// Fidelity returns the world's cache-model tier.
func (w *World) Fidelity() Fidelity { return w.inner.Fidelity() }

// MachineTable renders the machine description as the paper's Table 1.
func (w *World) MachineTable() string { return w.inner.Machine().Config().TableString() }

// Equation1Value computes the paper's Equation 1 over a counter delta:
// LLC misses per millisecond of unhalted execution.
func Equation1Value(d Counters) float64 { return core.Equation1Value(d) }

// RawLLCMValue computes the wall-normalized baseline indicator.
func RawLLCMValue(d Counters) float64 { return core.RawLLCMValue(d) }
