#!/usr/bin/env bash
# check_pkg_docs.sh — fail if any package in the module lacks a godoc
# package comment, or if an exported identifier of the public kyoto
# package lacks a doc comment, so `go doc` output stays usable
# everywhere.
#
# A package passes when at least one of its non-test .go files carries a
# "// Package <name> ..." comment (or "// Command ..." for main
# packages, the godoc convention for binaries). The public-API pass
# (scripts/exported_docs.go) additionally requires every exported type,
# func, method, const and var of the root package to be documented —
# internal packages are exempt, the supported surface is not. Runs from
# any directory; no arguments, no environment variables. CI runs it in
# the docs job; run it locally before adding a package or exporting an
# identifier.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while read -r dir pkg; do
	want="Package $pkg"
	if [ "$pkg" = "main" ]; then
		want="Command "
	fi
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		if grep -q "^// $want" "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "missing package comment: $dir (package $pkg)" >&2
		fail=1
	fi
done < <(go list -f '{{.Dir}} {{.Name}}' ./...)

if [ "$fail" -ne 0 ]; then
	echo "add a '// Package <name> ...' (or '// Command ...') comment; see any internal/* package for the house style" >&2
	exit 1
fi
echo "package comments: all packages documented"

go run scripts/exported_docs.go
