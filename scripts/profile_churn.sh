#!/usr/bin/env bash
# profile_churn.sh — profile the replay engine under a million-VM churn
# sweep and print the top CPU consumers. This is the workload that
# exposed json.Compact inside sweep.FingerprintPayload as half the
# sweep's CPU (fixed by fusing the compaction into the fingerprint
# fold); keep an eye on the top entries staying simulation work, not
# serialization overhead.
#
#   ./scripts/profile_churn.sh                 # analytic tier, 1M VMs
#   VMS=100000 FIDELITY=exact ./scripts/profile_churn.sh
#
#   VMS       trace size (default 1000000)
#   FIDELITY  cache-model tier for the replay (default analytic — the
#             fast tier makes the replay engine, not the cache model,
#             the hotspot, which is what this profile is for)
#   OUT       profile path prefix (default /tmp/kyoto-churn), writes
#             $OUT.cpu and $OUT.mem for `go tool pprof`.
set -euo pipefail
cd "$(dirname "$0")/.."

VMS="${VMS:-1000000}"
FIDELITY="${FIDELITY:-analytic}"
OUT="${OUT:-/tmp/kyoto-churn}"

go run ./cmd/kyotosim -churn "$VMS" -hosts 4 -fidelity "$FIDELITY" \
	-cpuprofile "$OUT.cpu" -memprofile "$OUT.mem" >/dev/null
go tool pprof -top -nodecount=15 "$OUT.cpu"
echo >&2
echo "profiles: $OUT.cpu $OUT.mem (go tool pprof -http=: $OUT.cpu)" >&2
