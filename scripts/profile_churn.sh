#!/usr/bin/env bash
# profile_churn.sh — profile the replay engine under a million-VM churn
# sweep and print the top CPU consumers. This is the workload that
# exposed json.Compact inside sweep.FingerprintPayload as half the
# sweep's CPU (fixed by fusing the compaction into the fingerprint
# fold); keep an eye on the top entries staying simulation work, not
# serialization overhead.
#
# The second pass profiles the due-host scheduler path: a sparse trace
# (horizon = 60 ticks per VM, 12 hosts) replayed with GOMAXPROCS=4 so
# the fleet spawns background drainers, which close per-host lag in
# DueChunkTicks chunks through hv.World.FastForward. Observed hotspots
# on this path (1-CPU container, 100k sparse VMs, 32s of samples): the
# profile is event work, not advancement — hv.(*World).tick and its
# analytic-executor callees hold ~55% cum (the busy ticks around each
# VM's residency; cpu.(*AnalyticContext).exec alone is ~23% flat),
# runtime overhead ~30% (runtime.asyncPreempt ~25% — the cost of
# GOMAXPROCS=4 drainers preempting each other on one core — plus GC),
# sweep.FingerprintPayload ~9%, trace JSON decode a few percent. The
# scheduler machinery itself — dueScheduler drain/seekLocked flat —
# is <0.5%, and FastForward's 55% cum is entirely the busy ticks it
# executes, not advancement overhead: the idle elision has made
# skipped host-ticks too cheap to register, which is exactly the point
# (pre-elision, empty RunTicks loops dominated sparse replays).
#
#   ./scripts/profile_churn.sh                 # analytic tier, 1M VMs
#   VMS=100000 FIDELITY=exact ./scripts/profile_churn.sh
#
#   VMS        trace size for the dense-churn pass (default 1000000)
#   SCHED_VMS  trace size for the sparse due-host scheduler pass
#              (default 100000; "0" skips the pass)
#   FIDELITY   cache-model tier for the replay (default analytic — the
#              fast tier makes the replay engine, not the cache model,
#              the hotspot, which is what this profile is for)
#   OUT        profile path prefix (default /tmp/kyoto-churn), writes
#              $OUT.cpu/$OUT.mem (dense) and $OUT-sched.cpu/.mem
#              (sparse scheduler pass) for `go tool pprof`.
set -euo pipefail
cd "$(dirname "$0")/.."

VMS="${VMS:-1000000}"
SCHED_VMS="${SCHED_VMS:-100000}"
FIDELITY="${FIDELITY:-analytic}"
OUT="${OUT:-/tmp/kyoto-churn}"

go run ./cmd/kyotosim -churn "$VMS" -hosts 4 -fidelity "$FIDELITY" \
	-cpuprofile "$OUT.cpu" -memprofile "$OUT.mem" >/dev/null
go tool pprof -top -nodecount=15 "$OUT.cpu"

if [ "$SCHED_VMS" != "0" ]; then
	# Sparse fleet: hosts idle most of the time, so every advancement
	# flows through the due-host scheduler (drainer chunks + event-path
	# seeks + idle elision) instead of a dense tick loop. GOMAXPROCS=4
	# guarantees drainer goroutines even on a single-CPU container.
	echo >&2
	echo "== due-host scheduler pass: $SCHED_VMS VMs, sparse, 12 hosts ==" >&2
	GOMAXPROCS=4 go run ./cmd/kyotosim -churn "$SCHED_VMS" \
		-churn-horizon "$((SCHED_VMS * 60))" -churn-life 5 -hosts 12 \
		-fidelity "$FIDELITY" \
		-cpuprofile "$OUT-sched.cpu" -memprofile "$OUT-sched.mem" >/dev/null
	go tool pprof -top -nodecount=15 "$OUT-sched.cpu"
	echo >&2
	# -show folds hidden callees into the shown nodes, so FastForward's
	# line here carries the busy ticks it executes; the machinery cost
	# is the dueScheduler drain/seekLocked flat columns.
	echo "scheduler-path share (drain/seek/FastForward):" >&2
	go tool pprof -top -show 'dueScheduler|FastForward|seekLocked' "$OUT-sched.cpu" | tail -n +2
fi

echo >&2
echo "profiles: $OUT.cpu $OUT.mem $OUT-sched.cpu $OUT-sched.mem (go tool pprof -http=: $OUT.cpu)" >&2
