#!/usr/bin/env bash
# bench_json.sh — run the hot-path microbenchmarks (and a sweep
# wall-clock measurement) and emit BENCH_kyoto.json, so the perf
# trajectory of the simulator is tracked commit over commit.
#
# Usage:
#   ./scripts/bench_json.sh              # ~1s per benchmark, writes BENCH_kyoto.json
#   BENCHTIME=10x ./scripts/bench_json.sh   # CI smoke: fast, noisy, still alloc-exact
#   OUT=/tmp/b.json ./scripts/bench_json.sh
#
# Environment variables (all optional; this is the whole interface, so
# the script is callable from CI without arguments):
#   OUT        output path for the JSON report (default: BENCH_kyoto.json
#              in the repo root). CI writes BENCH_ci.json and diffs the
#              allocs_per_op fields against zero.
#   BENCHTIME  passed to `go test -benchtime`. Durations ("1s") give
#              stable ns/op; iteration counts ("100x", "10x") are the CI
#              smoke mode — fast and noisy, but allocs/op stays exact,
#              which is what the CI gate checks.
#   SWEEPS     "0" skips the sweep wall-clock section (the fig4 sweep
#              costs ~15s serial).
#   SWEEP_EXP     shardable kyotobench experiment to time (default fig4).
#   SWEEP_SHARDS  local processes for the sharded run (default nproc).
#   CHECKPOINT "0" skips the checkpoint section: the warm-start forking
#              sweep (kyotobench -warmstart-json) on each tier, whose
#              wall_speedup is the measured cold-vs-forked ratio the
#              snapshot/restore work is accountable to. bit_identical
#              must stay true — the sweep itself fails otherwise.
#   FIDELITY   "0" skips the fidelity section: the analytic-vs-exact
#              tick-throughput ratios (paired from the benchmarks
#              section, so they are exactly as stable as BENCHTIME) and
#              the fig4 sweep wall-clock on each tier — the two numbers
#              the two-fidelity work is accountable to.
#   REPLAY     "0" skips the replay section: the three-placer churn sweep
#              (kyotosim -churn, analytic tier, no rebalancer) timed on
#              the lazy event-horizon fleet engine and again with
#              -lockstep (the eager pre-event-horizon baseline), with the
#              two stdout streams byte-compared — the wall-clock ratio
#              the lazy-clock work is accountable to, and the identity
#              proof that it is schedule-only. The workload is sparse by
#              construction (horizon = 60 ticks per VM, mean lifetime
#              REPLAY_LIFE) so fleet hosts idle most of the time — the
#              regime laziness exists for; a saturated fleet would
#              measure ~1x by design (see BenchmarkReplayChurn).
#   REPLAY_VMS   arrivals in the replay section's synthetic trace
#                (default 20000 — a quick proxy; the committed
#                BENCH_kyoto.json is generated with REPLAY_VMS=1000000,
#                the million-arrival headline).
#   REPLAY_HOSTS fleet size for the replay section (default 12).
#   REPLAY_LIFE  mean VM lifetime in ticks (default 5).
#   REPLAY_BENCHTIME  -benchtime for the per-regime events/sec pass
#                (BenchmarkReplayChurn: sparse/saturated/migrating,
#                analytic and exact tiers, each against its lockstep
#                twin — the regimes the headline number does not cover).
#                Default 2x; "0" skips the pass.
#
# The sweep section times the same experiment twice through the shard
# protocol, where -workers reaches the sweep engine: once as one
# single-worker process (sweep_shards.sh -n 1 — the serial reference)
# and once fanned across SWEEP_SHARDS single-worker processes. Both
# paths include envelope+merge overhead, so the ratio measures
# process-level sharding alone — exactly what distributing over
# machines buys. host_cpus records how many CPUs the measurement
# actually had: with SWEEP_SHARDS <= host_cpus the sharded run
# approaches shards-times speedup; a 1-CPU container shows sharding
# overhead instead.
#
# The "baseline_pr2" block records the pre-refactor numbers measured on the
# dev container (Xeon @ 2.70GHz) immediately before the PR-2 hot-path
# rewrite; compare against "benchmarks" from the same machine class only.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_kyoto.json}"
BENCHTIME="${BENCHTIME:-1s}"
SWEEPS="${SWEEPS:-1}"
SWEEP_EXP="${SWEEP_EXP:-fig4}"
SWEEP_SHARDS="${SWEEP_SHARDS:-$(nproc)}"
FIDELITY="${FIDELITY:-1}"
CHECKPOINT="${CHECKPOINT:-1}"
REPLAY="${REPLAY:-1}"
REPLAY_VMS="${REPLAY_VMS:-20000}"
REPLAY_HOSTS="${REPLAY_HOSTS:-12}"
REPLAY_LIFE="${REPLAY_LIFE:-5}"
REPLAY_BENCHTIME="${REPLAY_BENCHTIME:-2x}"

run_bench() {
	go test -run '^$' -bench 'BenchmarkWorldTick|BenchmarkCacheAccess|BenchmarkWorkloadGen|BenchmarkAccessLRU' \
		-benchtime "$BENCHTIME" -benchmem ./internal/hv ./internal/cache ./internal/workload
}

run_bench | awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns = ""
	allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns != "") {
		if (n++) printf ",\n"
		printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, (allocs == "" ? "null" : allocs)
	}
}
BEGIN {
	printf "{\n  \"schema\": \"kyoto-bench-v1\",\n"
	printf "  \"benchmarks\": {\n"
}
END {
	printf "\n  },\n"
	printf "  \"baseline_pr2\": {\n"
	printf "    \"BenchmarkWorldTick/credit\": {\"ns_per_op\": 6327740, \"allocs_per_op\": 2},\n"
	printf "    \"BenchmarkWorldTick/credit-4vm\": {\"ns_per_op\": 13261971, \"allocs_per_op\": 1},\n"
	printf "    \"BenchmarkWorldTick/kyoto-4vm\": {\"ns_per_op\": 5656224, \"allocs_per_op\": 3},\n"
	printf "    \"BenchmarkCacheAccess/hit\": {\"ns_per_op\": 5.166, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/stream-miss\": {\"ns_per_op\": 81.71, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/multi-owner\": {\"ns_per_op\": 90.68, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/path\": {\"ns_per_op\": 33.70, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkAccessLRU\": {\"ns_per_op\": 86.02, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/gcc\": {\"ns_per_op\": 24.02, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/lbm\": {\"ns_per_op\": 25.19, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/povray\": {\"ns_per_op\": 25.17, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkFig1Contention\": {\"ns_per_op\": 20569638032, \"allocs_per_op\": null}\n"
	printf "  }\n}\n"
}' > "$OUT"

if [ "$SWEEPS" != "0" ] || [ "$FIDELITY" != "0" ] || [ "$CHECKPOINT" != "0" ] || [ "$REPLAY" != "0" ]; then
	BIN="$(mktemp -d)"
	trap 'rm -rf "$BIN"' EXIT
	go build -o "$BIN/kyotobench" ./cmd/kyotobench
fi

if [ "$SWEEPS" != "0" ]; then
	# Sweep wall-clock: serial vs process-sharded execution of one
	# shardable experiment, folded into the report as a "sweeps" object.
	t0=$(date +%s%N)
	./scripts/sweep_shards.sh -n 1 -- "$BIN/kyotobench" -run "$SWEEP_EXP" -workers 1 >/dev/null
	t1=$(date +%s%N)
	serial_ms=$(((t1 - t0) / 1000000))

	t0=$(date +%s%N)
	./scripts/sweep_shards.sh -n "$SWEEP_SHARDS" -- "$BIN/kyotobench" -run "$SWEEP_EXP" -workers 1 >/dev/null
	t1=$(date +%s%N)
	sharded_ms=$(((t1 - t0) / 1000000))

	python3 - "$OUT" "$SWEEP_EXP" "$serial_ms" "$sharded_ms" "$SWEEP_SHARDS" <<'EOF'
import json, sys, os
path, exp, serial_ms, sharded_ms, shards = sys.argv[1:6]
with open(path) as f:
    d = json.load(f)
d["sweeps"] = {
    exp: {
        "serial_ms": int(serial_ms),
        "sharded_ms": int(sharded_ms),
        "shards": int(shards),
        "speedup": round(int(serial_ms) / max(1, int(sharded_ms)), 2),
        "host_cpus": os.cpu_count(),
    }
}
with open(path, "w") as f:
    json.dump(d, f, indent=2)
    f.write("\n")
EOF
	echo "sweep $SWEEP_EXP: serial ${serial_ms}ms, ${SWEEP_SHARDS}-shard ${sharded_ms}ms" >&2
fi

if [ "$FIDELITY" != "0" ]; then
	# Fidelity wall-clock: the same fig4 sweep on each cache-model tier.
	# Tick-level ratios come from the benchmarks section (paired
	# BenchmarkWorldTick vs BenchmarkWorldTickAnalytic sub-benchmarks);
	# the sweep timing shows what the ratio buys end to end.
	t0=$(date +%s%N)
	"$BIN/kyotobench" -run fig4 >/dev/null
	t1=$(date +%s%N)
	exact_ms=$(((t1 - t0) / 1000000))

	t0=$(date +%s%N)
	"$BIN/kyotobench" -run fig4 -fidelity analytic >/dev/null
	t1=$(date +%s%N)
	analytic_ms=$(((t1 - t0) / 1000000))

	python3 - "$OUT" "$exact_ms" "$analytic_ms" <<'EOF'
import json, sys
path, exact_ms, analytic_ms = sys.argv[1:4]
with open(path) as f:
    d = json.load(f)
ticks = {}
for name, b in d.get("benchmarks", {}).items():
    prefix = "BenchmarkWorldTick/"
    if not name.startswith(prefix):
        continue
    sub = name[len(prefix):]
    a = d["benchmarks"].get("BenchmarkWorldTickAnalytic/" + sub)
    if a is None:
        continue
    ticks[sub] = {
        "exact_ns_per_op": b["ns_per_op"],
        "analytic_ns_per_op": a["ns_per_op"],
        "speedup": round(b["ns_per_op"] / max(1e-9, a["ns_per_op"]), 1),
    }
d["fidelity"] = {
    "tick": ticks,
    "fig4_sweep": {
        "exact_ms": int(exact_ms),
        "analytic_ms": int(analytic_ms),
        "speedup": round(int(exact_ms) / max(1, int(analytic_ms)), 1),
    },
}
with open(path, "w") as f:
    json.dump(d, f, indent=2)
    f.write("\n")
EOF
	echo "fidelity fig4: exact ${exact_ms}ms, analytic ${analytic_ms}ms" >&2
fi

if [ "$CHECKPOINT" != "0" ]; then
	# Checkpoint section: the warm-start forking sweep on each tier. The
	# sweep runs every contention arm cold (re-simulating the shared
	# warm-up) and forked (all arms restored from one checkpoint),
	# verifies per-arm bit-identity, and reports the wall-clock ratio —
	# the number checkpointing is accountable to.
	"$BIN/kyotobench" -warmstart-json "$BIN/ws-exact.json" -seed 7
	"$BIN/kyotobench" -warmstart-json "$BIN/ws-analytic.json" -seed 7 -fidelity analytic

	python3 - "$OUT" "$BIN/ws-exact.json" "$BIN/ws-analytic.json" <<'EOF'
import json, sys
path, exact, analytic = sys.argv[1:4]
with open(path) as f:
    d = json.load(f)
with open(exact) as f:
    e = json.load(f)
with open(analytic) as f:
    a = json.load(f)
d["checkpoint"] = {"warmstart": {e["fidelity"]: e, a["fidelity"]: a}}
with open(path, "w") as f:
    json.dump(d, f, indent=2)
    f.write("\n")
EOF
	echo "checkpoint warmstart: exact + analytic warm-start sweeps folded in" >&2
fi

if [ "$REPLAY" != "0" ]; then
	# Replay section: the sparse churn sweep on the lazy event-horizon
	# engine vs the eager lockstep baseline. Horizon scales with the
	# arrival count (60 ticks per VM) so the fleet's idle fraction — the
	# thing laziness elides — is the same at every REPLAY_VMS, and the
	# speedup measured at the 20k default predicts the committed
	# million-arrival number. The byte-compare of the two runs' stdout is
	# the cheap end-to-end half of the bit-identity contract (the full
	# per-VM fingerprint equality is pinned in internal/arrivals tests).
	go build -o "$BIN/kyotosim" ./cmd/kyotosim
	horizon=$((REPLAY_VMS * 60))

	t0=$(date +%s%N)
	"$BIN/kyotosim" -churn "$REPLAY_VMS" -churn-horizon "$horizon" -churn-life "$REPLAY_LIFE" \
		-hosts "$REPLAY_HOSTS" -fidelity analytic > "$BIN/replay-lazy.txt"
	t1=$(date +%s%N)
	lazy_ms=$(((t1 - t0) / 1000000))

	t0=$(date +%s%N)
	"$BIN/kyotosim" -churn "$REPLAY_VMS" -churn-horizon "$horizon" -churn-life "$REPLAY_LIFE" \
		-hosts "$REPLAY_HOSTS" -fidelity analytic -lockstep > "$BIN/replay-lockstep.txt"
	t1=$(date +%s%N)
	lockstep_ms=$(((t1 - t0) / 1000000))

	cmp "$BIN/replay-lazy.txt" "$BIN/replay-lockstep.txt" || {
		echo "replay: lazy and lockstep outputs differ — the engines are not bit-identical" >&2
		exit 1
	}

	# Per-regime events/sec: the headline above is the sparse analytic
	# no-rebalancer case; BenchmarkReplayChurn covers the rest (exact
	# tier, migration epochs forcing barriers, saturated parity) with a
	# lockstep twin per regime.
	: > "$BIN/replay-bench.txt"
	if [ "$REPLAY_BENCHTIME" != "0" ]; then
		go test -run '^$' -bench BenchmarkReplayChurn -benchtime "$REPLAY_BENCHTIME" \
			./internal/arrivals > "$BIN/replay-bench.txt"
	fi

	python3 - "$OUT" "$REPLAY_VMS" "$REPLAY_HOSTS" "$REPLAY_LIFE" "$horizon" "$lazy_ms" "$lockstep_ms" "$BIN/replay-bench.txt" <<'EOF'
import json, re, sys
path, vms, hosts, life, horizon, lazy_ms, lockstep_ms, benchfile = sys.argv[1:9]
with open(path) as f:
    d = json.load(f)
regimes = {}
for line in open(benchfile):
    parts = line.split()
    if not parts or not parts[0].startswith("BenchmarkReplayChurn/"):
        continue
    # go test appends "-GOMAXPROCS" only when it is not 1; strip just a
    # trailing numeric suffix so "fleet-lockstep" keeps its name.
    name = re.sub(r"-\d+$", "", parts[0].split("/", 1)[1])
    for i, tok in enumerate(parts):
        if tok == "events/sec":
            regimes[name] = float(parts[i - 1])
arms = 3  # the churn sweep replays the trace once per placement policy
d["replay"] = {
    "workload": {
        "arrivals": int(vms),
        "hosts": int(hosts),
        "horizon_ticks": int(horizon),
        "mean_lifetime_ticks": int(life),
        "fidelity": "analytic",
        "placer_arms": arms,
    },
    "lazy_ms": int(lazy_ms),
    "lockstep_baseline_ms": int(lockstep_ms),
    "speedup": round(int(lockstep_ms) / max(1, int(lazy_ms)), 2),
    "lazy_arrivals_per_sec": round(arms * int(vms) / max(0.001, int(lazy_ms) / 1000)),
    "lockstep_arrivals_per_sec": round(arms * int(vms) / max(0.001, int(lockstep_ms) / 1000)),
    "outputs_identical": True,
}
if regimes:
    d["replay"]["regimes_events_per_sec"] = regimes
with open(path, "w") as f:
    json.dump(d, f, indent=2)
    f.write("\n")
EOF
	echo "replay churn ($REPLAY_VMS VMs, $REPLAY_HOSTS hosts): lazy ${lazy_ms}ms, lockstep ${lockstep_ms}ms" >&2
fi

echo "wrote $OUT" >&2
