#!/usr/bin/env bash
# bench_json.sh — run the hot-path microbenchmarks and emit BENCH_kyoto.json
# (benchmark name -> ns/op, allocs/op), so the perf trajectory of the
# simulator is tracked commit over commit.
#
# Usage:
#   ./scripts/bench_json.sh              # ~1s per benchmark, writes BENCH_kyoto.json
#   BENCHTIME=10x ./scripts/bench_json.sh   # CI smoke: fast, noisy, still alloc-exact
#   OUT=/tmp/b.json ./scripts/bench_json.sh
#
# Environment variables (all optional; this is the whole interface, so
# the script is callable from CI without arguments):
#   OUT        output path for the JSON report (default: BENCH_kyoto.json
#              in the repo root). CI writes BENCH_ci.json and diffs the
#              allocs_per_op fields against zero.
#   BENCHTIME  passed to `go test -benchtime`. Durations ("1s") give
#              stable ns/op; iteration counts ("100x", "10x") are the CI
#              smoke mode — fast and noisy, but allocs/op stays exact,
#              which is what the CI gate checks.
#
# The "baseline_pr2" block records the pre-refactor numbers measured on the
# dev container (Xeon @ 2.70GHz) immediately before the PR-2 hot-path
# rewrite; compare against "benchmarks" from the same machine class only.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${OUT:-BENCH_kyoto.json}"
BENCHTIME="${BENCHTIME:-1s}"

run_bench() {
	go test -run '^$' -bench 'BenchmarkWorldTick|BenchmarkCacheAccess|BenchmarkWorkloadGen|BenchmarkAccessLRU' \
		-benchtime "$BENCHTIME" -benchmem ./internal/hv ./internal/cache ./internal/workload
}

run_bench | awk '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns = ""
	allocs = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns != "") {
		if (n++) printf ",\n"
		printf "    \"%s\": {\"ns_per_op\": %s, \"allocs_per_op\": %s}", name, ns, (allocs == "" ? "null" : allocs)
	}
}
BEGIN {
	printf "{\n  \"schema\": \"kyoto-bench-v1\",\n"
	printf "  \"benchmarks\": {\n"
}
END {
	printf "\n  },\n"
	printf "  \"baseline_pr2\": {\n"
	printf "    \"BenchmarkWorldTick/credit\": {\"ns_per_op\": 6327740, \"allocs_per_op\": 2},\n"
	printf "    \"BenchmarkWorldTick/credit-4vm\": {\"ns_per_op\": 13261971, \"allocs_per_op\": 1},\n"
	printf "    \"BenchmarkWorldTick/kyoto-4vm\": {\"ns_per_op\": 5656224, \"allocs_per_op\": 3},\n"
	printf "    \"BenchmarkCacheAccess/hit\": {\"ns_per_op\": 5.166, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/stream-miss\": {\"ns_per_op\": 81.71, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/multi-owner\": {\"ns_per_op\": 90.68, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkCacheAccess/path\": {\"ns_per_op\": 33.70, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkAccessLRU\": {\"ns_per_op\": 86.02, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/gcc\": {\"ns_per_op\": 24.02, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/lbm\": {\"ns_per_op\": 25.19, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkWorkloadGen/povray\": {\"ns_per_op\": 25.17, \"allocs_per_op\": 0},\n"
	printf "    \"BenchmarkFig1Contention\": {\"ns_per_op\": 20569638032, \"allocs_per_op\": null}\n"
	printf "  }\n}\n"
}' > "$OUT"

echo "wrote $OUT" >&2
