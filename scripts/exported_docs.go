//go:build ignore

// exported_docs.go — the docs gate for the public API surface: every
// exported identifier in the root kyoto package (types, funcs, methods on
// exported types, consts and vars) must carry a doc comment, so `go doc
// kyoto.<Name>` never comes back empty. Grouped declarations may share
// the group's comment, the usual godoc convention for const blocks.
//
// Run from the repository root (scripts/check_pkg_docs.sh does):
//
//	go run scripts/exported_docs.go
//
// Exits non-zero listing every undocumented identifier.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pkg, ok := pkgs["kyoto"]
	if !ok {
		fmt.Fprintln(os.Stderr, "exported_docs: no package kyoto in the current directory; run from the repo root")
		os.Exit(1)
	}

	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, what, name))
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil {
					recv := receiverName(d.Recv)
					if recv == "" || !ast.IsExported(recv) {
						continue
					}
					report(d.Pos(), "method", recv+"."+d.Name.Name)
					continue
				}
				report(d.Pos(), "func", d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil || d.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(n.Pos(), "const/var", n.Name)
							}
						}
					}
				}
			}
		}
	}

	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintln(os.Stderr, "exported identifiers without doc comments in the public kyoto package:")
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, "  "+m)
		}
		os.Exit(1)
	}
	fmt.Println("exported docs: public kyoto API fully documented")
}

// receiverName returns the receiver's type name, unwrapping pointers and
// generic instantiations; "" when it cannot be determined.
func receiverName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
