#!/usr/bin/env bash
# sweep_shards.sh — fan one sweep across N local processes, then merge.
#
# Works with any command that understands the repo's shard protocol
# (-shard k/n, -shard-out FILE, -merge GLOB): kyotobench's shardable
# experiments (see kyotobench -list-shardable) and kyotosim's
# -trace/-churn sweep modes.
#
# Usage:
#   ./scripts/sweep_shards.sh [-n SHARDS] [-o OUTDIR] -- <command and flags>
#
#   ./scripts/sweep_shards.sh -n 4 -- go run ./cmd/kyotobench -run fig4
#   ./scripts/sweep_shards.sh -n 2 -- ./kyotosim -churn 24 -hosts 4 -migrate all
#
# Each shard runs as its own OS process (the same envelopes fan out
# across machines: run the -shard invocations anywhere, collect the JSON
# files, and -merge them on any one host). With -o the envelopes are kept
# in OUTDIR for inspection; by default they live in a temp dir that is
# cleaned up on exit.
#
# Environment:
#   SHARDS  default shard count when -n is not given (default: nproc).
set -euo pipefail

usage() {
	echo "usage: $0 [-n shards] [-o outdir] -- command -run <experiment> [flags]" >&2
	exit 2
}

SHARDS="${SHARDS:-$(nproc)}"
OUTDIR=""
while [ $# -gt 0 ]; do
	case "$1" in
	-n)
		SHARDS="$2"
		shift 2
		;;
	-o)
		OUTDIR="$2"
		shift 2
		;;
	--)
		shift
		break
		;;
	*)
		usage
		;;
	esac
done
[ $# -gt 0 ] || usage
[ "$SHARDS" -ge 1 ] || usage

if [ -z "$OUTDIR" ]; then
	OUTDIR="$(mktemp -d)"
	trap 'rm -rf "$OUTDIR"' EXIT
else
	mkdir -p "$OUTDIR"
fi

pids=()
for k in $(seq 0 $((SHARDS - 1))); do
	"$@" -shard "$k/$SHARDS" -shard-out "$OUTDIR/shard-$k.json" &
	pids+=("$!")
done
fail=0
for pid in "${pids[@]}"; do
	wait "$pid" || fail=1
done
if [ "$fail" -ne 0 ]; then
	echo "sweep_shards.sh: a shard failed" >&2
	exit 1
fi

"$@" -merge "$OUTDIR/shard-*.json"
