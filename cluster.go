package kyoto

// The cluster facade: a Fleet of simulated hosts behind a placement
// policy, the layer on which the paper's cluster-scoped argument runs.
// Contention-aware placement (PlacerSpread) needs to know every VM's
// behaviour and still degenerates as the fleet fills; Kyoto admission
// (PlacerKyoto) books llc_cap like any other resource and makes whatever
// placement results safe.

import (
	"fmt"

	"kyoto/internal/cluster"
	"kyoto/internal/machine"
	"kyoto/internal/sched"
)

// ErrUnplaceable is wrapped by Cluster.Place when no host can take the
// VM — capacity exhaustion under any policy, or a permit rejection under
// PlacerKyoto. Test with errors.Is.
var ErrUnplaceable = cluster.ErrUnplaceable

// PlacerKind selects a built-in placement policy.
type PlacerKind int

// Placement policies.
const (
	// PlacerFirstFit is contention-blind first-fit bin-packing on vCPU
	// and memory (the IaaS default).
	PlacerFirstFit PlacerKind = iota
	// PlacerSpread is contention-aware placement balancing Figure-4
	// aggressiveness across hosts (the related-work approach).
	PlacerSpread
	// PlacerKyoto is Kyoto admission control: llc_cap is booked as a
	// first-class resource and VMs whose permits oversubscribe every
	// host are rejected.
	PlacerKyoto
)

// placerOf maps the public enum to the internal policy.
func placerOf(kind PlacerKind) (cluster.Placer, error) {
	switch kind {
	case PlacerFirstFit:
		return cluster.FirstFit{}, nil
	case PlacerSpread:
		return cluster.Spread{}, nil
	case PlacerKyoto:
		return cluster.Admission{}, nil
	default:
		return nil, fmt.Errorf("kyoto: unknown placer kind %d", kind)
	}
}

// PlacerKindByName returns the policy with the given CLI name (see
// PlacerNames); the name set lives with the policies themselves.
func PlacerKindByName(name string) (PlacerKind, error) {
	p, err := cluster.PlacerByName(name)
	if err != nil {
		return 0, err
	}
	switch p.(type) {
	case cluster.FirstFit:
		return PlacerFirstFit, nil
	case cluster.Spread:
		return PlacerSpread, nil
	case cluster.Admission:
		return PlacerKyoto, nil
	}
	return 0, fmt.Errorf("kyoto: placer %q has no public kind", name)
}

// PlacerNames lists the built-in placement policy names.
func PlacerNames() []string { return cluster.PlacerNames() }

// ClusterConfig assembles a simulated fleet.
type ClusterConfig struct {
	// Hosts is the fleet size (at least 1).
	Hosts int
	// World is the per-host template: machine, scheduler, Kyoto
	// enforcement, monitor and seed, exactly as for NewWorld. Host i
	// derives its own seed from World.Seed.
	World WorldConfig
	// Placer picks the placement policy (default PlacerFirstFit).
	Placer PlacerKind
	// HostMemoryMB overrides each host's memory capacity for admission
	// (default the machine's MainMemoryMB).
	HostMemoryMB int
	// HostLLCBudget overrides each host's pollution-permit budget in
	// Equation-1 units (default cores x 250, the paper's Figure-5
	// booking per core).
	HostLLCBudget float64
	// HostOverrides customizes individual hosts by ID (machine, memory,
	// permit budget), making the fleet heterogeneous; hosts without an
	// entry are stamped from the template.
	HostOverrides map[int]HostOverride
	// Workers caps RunTicks concurrency (default GOMAXPROCS).
	Workers int
}

// ClusterVMSpec asks a cluster for a VM: the usual VMSpec plus the
// memory booking the placement policies bin-pack on.
type ClusterVMSpec struct {
	VMSpec
	// MemoryMB is the VM's booked memory (default 64 MB, 1/8 of the
	// scaled Table-1 host).
	MemoryMB int
}

// ClusterPlacement records where a VM landed.
type ClusterPlacement struct {
	// HostID is the chosen host.
	HostID int
	// VM is the instantiated domain on that host.
	VM *VM
}

// Cluster is a running simulated fleet.
type Cluster struct {
	fleet *cluster.Fleet
	hosts []*World

	// cfg is the construction config, retained so SnapshotCluster can
	// digest it into the envelope (ResumeCluster must match it exactly).
	cfg ClusterConfig
}

// NewCluster builds a fleet of cfg.Hosts identical hosts.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	placer, err := placerOf(cfg.Placer)
	if err != nil {
		return nil, err
	}
	wc := cfg.World
	var newSched func(cores int) sched.Scheduler
	switch wc.Scheduler {
	case 0, CreditScheduler:
		newSched = func(cores int) sched.Scheduler { return sched.NewCredit(cores) }
	case CFSScheduler:
		newSched = func(int) sched.Scheduler { return sched.NewCFS() }
	case PiscesScheduler:
		newSched = func(int) sched.Scheduler { return sched.NewPisces() }
	default:
		return nil, fmt.Errorf("kyoto: unknown scheduler kind %d", wc.Scheduler)
	}
	var shadow bool
	switch wc.Monitor {
	case MonitorCounters:
	case MonitorShadowSim:
		shadow = true
	default:
		return nil, fmt.Errorf("kyoto: unknown monitor kind %d", wc.Monitor)
	}
	var mcfg machine.Config = wc.Machine
	f, err := cluster.New(cluster.Config{
		Hosts: cfg.Hosts,
		Template: cluster.HostTemplate{
			Machine:       mcfg,
			NewSched:      newSched,
			EnableKyoto:   wc.EnableKyoto,
			ShadowMonitor: shadow,
			Seed:          wc.Seed,
			Fidelity:      wc.Fidelity,
			MemoryMB:      cfg.HostMemoryMB,
			LLCBudget:     cfg.HostLLCBudget,
		},
		Overrides: cfg.HostOverrides,
		Placer:    placer,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{fleet: f, cfg: cfg}
	for _, h := range f.Hosts() {
		c.hosts = append(c.hosts, &World{inner: h.World, kyoto: h.Kyoto()})
	}
	return c, nil
}

// Place asks the policy for a host and instantiates the VM there. The
// error reports a policy rejection (Kyoto admission refusing an
// oversubscribing permit) or fleet exhaustion.
func (c *Cluster) Place(spec ClusterVMSpec) (ClusterPlacement, error) {
	p, err := c.fleet.Place(cluster.Request{Spec: spec.VMSpec, MemoryMB: spec.MemoryMB})
	if err != nil {
		return ClusterPlacement{}, err
	}
	return ClusterPlacement{HostID: p.HostID, VM: p.VM}, nil
}

// Remove tears the named VM down wherever it landed, freeing its booked
// vCPUs, memory and llc_cap permit and evicting its cache footprint.
// Removing a VM the fleet does not hold returns an error and changes
// nothing. The departed VM is returned with its lifetime counters intact.
func (c *Cluster) Remove(name string) (*VM, error) {
	p, err := c.fleet.Remove(name)
	if err != nil {
		return nil, err
	}
	return p.VM, nil
}

// Migrate live-migrates the named VM to dstHost, carrying its lifetime
// counters and punishments along. The migration pays the real costs: the
// VM's cache footprint on the source is evicted, the destination starts
// cold, and a positive downtime suspends the VM for that many ticks on
// arrival (the stop-and-copy blackout). Booked vCPUs, memory and llc_cap
// move with the VM; a destination without headroom (including permit
// headroom on Kyoto-enforcing hosts) fails with ErrUnplaceable and
// changes nothing. Migrating a VM to its current host is a free no-op.
func (c *Cluster) Migrate(name string, dstHost int, downtime int) (ClusterPlacement, error) {
	p, err := c.fleet.Migrate(name, dstHost, downtime)
	if err != nil {
		return ClusterPlacement{}, err
	}
	return ClusterPlacement{HostID: p.HostID, VM: p.VM}, nil
}

// RunTicks advances every host n scheduler ticks, fanning hosts out
// across a bounded worker pool. Hosts are independent worlds, so the
// result is bit-identical to running them one after another.
func (c *Cluster) RunTicks(n int) { c.fleet.RunTicks(n) }

// Hosts returns the fleet size.
func (c *Cluster) Hosts() int { return c.fleet.Size() }

// Host returns host i as a World, giving access to its VMs, clock and
// Kyoto ledger.
func (c *Cluster) Host(i int) *World { return c.hosts[i] }

// Placements returns every successful placement in request order.
func (c *Cluster) Placements() []ClusterPlacement {
	ps := c.fleet.Placements()
	out := make([]ClusterPlacement, len(ps))
	for i, p := range ps {
		out[i] = ClusterPlacement{HostID: p.HostID, VM: p.VM}
	}
	return out
}

// FindVM returns the named VM and its host ID, or (nil, -1).
func (c *Cluster) FindVM(name string) (*VM, int) { return c.fleet.FindVM(name) }
