package kyoto_test

// Runnable godoc examples for the fleet-lifecycle API: these are executed
// by `go test` (and the CI docs job runs `go test -run Example ./...`),
// so the documented snippets cannot rot. Each example is deterministic —
// fixed seeds, fixed traces — which is what lets the Output blocks be
// exact.

import (
	"encoding/json"
	"fmt"

	"kyoto"
)

// lifecycleTrace is a tiny arrival/departure trace shared by the
// examples: three permit-booking VMs and one permit-less VM that only
// Kyoto admission rejects.
func lifecycleTrace() kyoto.Trace {
	return kyoto.Trace{Events: []kyoto.TraceEvent{
		{Submit: 0, Lifetime: 30, Name: "web", App: "gcc", LLCCap: 250},
		{Submit: 0, Lifetime: 30, Name: "batch", App: "lbm", LLCCap: 250},
		{Submit: 5, Lifetime: 10, Name: "noperm", App: "bzip"},
		{Submit: 10, Lifetime: 20, Name: "spike", App: "mcf", LLCCap: 250},
	}}
}

// ExampleReplayTrace replays a small trace on a 2-host Kyoto-admission
// fleet: arrivals are placed, departures free their bookings and cache
// footprint, and the permit-less VM is rejected at admission.
func ExampleReplayTrace() {
	res, err := kyoto.ReplayTrace(kyoto.ClusterConfig{
		Hosts:  2,
		World:  kyoto.WorldConfig{Seed: 1, EnableKyoto: true},
		Placer: kyoto.PlacerKyoto,
	}, lifecycleTrace(), kyoto.ReplayOptions{DrainTicks: 6})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("placed %d of %d, rejected %d\n", res.Placed, len(res.Records), res.Rejected)
	for _, rec := range res.Records {
		if rec.Rejected {
			fmt.Printf("%s: no llc_cap permit booked\n", rec.Name)
		}
	}
	// Output:
	// placed 3 of 4, rejected 1
	// noperm: no llc_cap permit booked
}

// ExampleSweepTrace contrasts the three placement policies over one
// trace on identically seeded fleets — the paper's argument under churn:
// the capacity-only policies place everything (and let pollution land
// where it may), Kyoto admission rejects the VM that books no permit.
func ExampleSweepTrace() {
	res, err := kyoto.SweepTrace(lifecycleTrace(), kyoto.TraceSweepConfig{
		Hosts: 2, Seed: 1, DrainTicks: 6,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range res.Rows {
		fmt.Printf("%s: placed %d, rejected %d\n", row.Placer, row.Placed, row.Rejected)
	}
	// Output:
	// first-fit: placed 4, rejected 0
	// spread: placed 4, rejected 0
	// kyoto: placed 3, rejected 1
}

// ExampleCluster_Migrate live-migrates a noisy VM to another host: its
// lifetime counters move with it, its cache footprint does not (the
// migration's cost), and a 2-tick blackout models the stop-and-copy
// window.
func ExampleCluster_Migrate() {
	c, err := kyoto.NewCluster(kyoto.ClusterConfig{
		Hosts: 2,
		World: kyoto.WorldConfig{Seed: 1},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := c.Place(kyoto.ClusterVMSpec{
		VMSpec: kyoto.VMSpec{Name: "noisy", App: "lbm", LLCCap: 250},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	c.RunTicks(12)
	before := p.VM.Counters().Instructions

	moved, err := c.Migrate("noisy", 1, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	_, host := c.FindVM("noisy")
	fmt.Printf("noisy: host %d -> host %d\n", p.HostID, host)
	fmt.Printf("lifetime counters preserved: %v\n", moved.VM.Counters().Instructions >= before)
	// Output:
	// noisy: host 0 -> host 1
	// lifetime counters preserved: true
}

// ExampleNewReactiveRebalancer replays a trace with the full reactive
// stack: rejected arrivals wait in a FIFO pending queue, and every 9
// ticks the reactive rebalancer may live-migrate the worst polluter of
// the hottest host to the coolest host with headroom.
func ExampleNewReactiveRebalancer() {
	res, err := kyoto.ReplayTrace(kyoto.ClusterConfig{
		Hosts: 2,
		World: kyoto.WorldConfig{Seed: 1},
	}, lifecycleTrace(), kyoto.ReplayOptions{
		DrainTicks:        6,
		Pending:           kyoto.PendingFIFO,
		Rebalancer:        kyoto.NewReactiveRebalancer(0),
		RebalanceEvery:    9,
		MigrationDowntime: 2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Wherever the polluter lands becomes the hottest host by the next
	// epoch, so a memoryless policy would bounce it back and forth
	// forever — reactive migration chasing the hotspot it itself
	// creates. The built-in per-VM migration cooldown (hysteresis) stops
	// that: after the t=9 move the polluter is ineligible while its
	// cold-cache transient decays, so the replay sees one migration, not
	// a ping-pong.
	fmt.Printf("placed %d, migrations %d\n", res.Placed, len(res.Migrations))
	for _, m := range res.Migrations {
		fmt.Printf("t=%d %s: host%d -> host%d\n", m.Tick, m.Name, m.SrcHost, m.DstHost)
	}

	// Output:
	// placed 4, migrations 1
	// t=9 batch: host0 -> host1
}

// ExampleNewSeedSweeper replicates the three-placer trace sweep under
// three consecutive seeds and reads a metric's across-seed distribution
// off the merged result. Kyoto admission rejects the permit-less VM
// under every seed, so the rejection rate is exactly 1/4 with a
// zero-width confidence interval.
func ExampleNewSeedSweeper() {
	proto, err := kyoto.NewTraceSweeper(lifecycleTrace(), kyoto.TraceSweepConfig{
		Hosts: 2, Seed: 1, DrainTicks: 6,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ss, err := kyoto.NewSeedSweeper(proto, kyoto.SeedSweepConfig{Seeds: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("plan: %d jobs\n", len(kyoto.SweepJobs(ss)))
	if err := kyoto.RunSweep(ss, 0); err != nil {
		fmt.Println(err)
		return
	}
	res := ss.Result()
	sum, err := res.Metric("kyoto", "rej_rate")
	if err != nil {
		fmt.Println(err)
		return
	}
	ci, err := sum.MeanCI(res.Confidence)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("kyoto rej_rate over %d seeds: %s\n", sum.Count(), kyoto.FormatMeanCI(sum.Mean(), ci.Halfwidth()))
	// Output:
	// plan: 21 jobs
	// kyoto rej_rate over 3 seeds: 0.250 ± 0.000
}

// ExampleMergeShards runs the three-placer trace sweep as two
// independent shards — the way two processes or machines would, each
// rebuilding the sweep from the same trace and config — and merges the
// shard envelopes into the same result an unsharded run produces, bit
// for bit.
func ExampleMergeShards() {
	build := func() *kyoto.TraceSweeper {
		s, err := kyoto.NewTraceSweeper(lifecycleTrace(), kyoto.TraceSweepConfig{Hosts: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		return s
	}
	fmt.Printf("plan: %d jobs\n", len(kyoto.SweepJobs(build())))

	var envs []kyoto.ShardEnvelope
	for k := 0; k < 2; k++ {
		env, err := kyoto.RunSweepShard(build(), k, 2, 0)
		if err != nil {
			fmt.Println(err)
			return
		}
		envs = append(envs, env)
	}
	merged := build()
	if err := kyoto.MergeShards(merged, envs); err != nil {
		fmt.Println(err)
		return
	}
	for _, row := range merged.Result().Rows {
		fmt.Printf("%s: placed %d, rejected %d\n", row.Placer, row.Placed, row.Rejected)
	}
	// Output:
	// plan: 7 jobs
	// first-fit: placed 4, rejected 0
	// spread: placed 4, rejected 0
	// kyoto: placed 3, rejected 1
}

// ExampleSnapshot checkpoints a running world mid-simulation: the
// snapshot is a versioned JSON envelope carrying a fingerprinted copy of
// the complete simulation state, and taking it does not perturb the run.
func ExampleSnapshot() {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: 7, EnableKyoto: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := w.AddVM(kyoto.VMSpec{Name: "web", App: "gcc", Pins: []int{0}, LLCCap: 250}); err != nil {
		fmt.Println(err)
		return
	}
	w.RunTicks(20)
	snap, err := kyoto.Snapshot(w)
	if err != nil {
		fmt.Println(err)
		return
	}
	var env struct {
		Schema string `json:"schema"`
		Kind   string `json:"kind"`
	}
	if err := json.Unmarshal(snap, &env); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s %s at tick %d\n", env.Schema, env.Kind, w.Now())
	// Output:
	// kyoto-snapshot-v1 world at tick 20
}

// ExampleResume restores a snapshot into a freshly configured world and
// continues the run bit-identically: the straight-through world and the
// snapshot-resumed world agree counter for counter, which is what makes
// warm-started sweeps and killed-and-resumed runs trustworthy.
func ExampleResume() {
	cfg := kyoto.WorldConfig{Seed: 7, EnableKyoto: true}
	build := func() (*kyoto.World, error) {
		w, err := kyoto.NewWorld(cfg)
		if err != nil {
			return nil, err
		}
		for _, spec := range []kyoto.VMSpec{
			{Name: "web", App: "gcc", Pins: []int{0}, LLCCap: 250},
			{Name: "batch", App: "lbm", Pins: []int{1}, LLCCap: 250},
		} {
			if _, err := w.AddVM(spec); err != nil {
				return nil, err
			}
		}
		return w, nil
	}
	straight, err := build()
	if err != nil {
		fmt.Println(err)
		return
	}
	straight.RunTicks(40)

	checkpointed, err := build()
	if err != nil {
		fmt.Println(err)
		return
	}
	checkpointed.RunTicks(25)
	snap, err := kyoto.Snapshot(checkpointed)
	if err != nil {
		fmt.Println(err)
		return
	}
	resumed, err := kyoto.Resume(cfg, snap)
	if err != nil {
		fmt.Println(err)
		return
	}
	resumed.RunTicks(15)

	a := straight.FindVM("web").Counters()
	b := resumed.FindVM("web").Counters()
	fmt.Printf("resumed at tick 25, ran to %d; counters equal: %v\n",
		resumed.Now(), a == b)
	// Output:
	// resumed at tick 25, ran to 40; counters equal: true
}
