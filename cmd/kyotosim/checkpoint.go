package main

// Scenario-mode checkpointing: -checkpoint-every N -checkpoint-out f
// periodically serializes the running world — plus the report
// bookkeeping that lives outside it: the scenario itself, the current
// tick and the measurement-window baseline counters — into a small JSON
// wrapper around the snapshot world envelope, and -resume f reloads the
// wrapper and continues, producing output byte-identical to the
// uninterrupted run. Mismatched machine/scheduler/kyoto/monitor/seed/
// fidelity settings surface through the envelope's config digest;
// everything the digest cannot see (the VM list, the warmup/ticks
// windows) is caught by comparing the stored scenario bytes. Writes are
// atomic (temp file + rename), so a kill mid-write leaves the previous
// checkpoint intact.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"

	"kyoto"
)

// cliCheckpointSchema versions the wrapper; bump on incompatible change.
const cliCheckpointSchema = "kyotosim-checkpoint-v1"

// cliCheckpoint is the scenario-mode checkpoint file.
type cliCheckpoint struct {
	Schema string `json:"schema"`
	// Scenario is the compacted scenario JSON the run was started with;
	// a resume must present the same scenario.
	Scenario json.RawMessage `json:"scenario"`
	// Tick is the world clock at capture time.
	Tick uint64 `json:"tick"`
	// Before holds the per-VM counters at the end of warmup (the
	// measurement-window baseline), once the run is past warmup.
	Before []kyoto.Counters `json:"before,omitempty"`
	// Snapshot is the internal/snapshot world envelope.
	Snapshot json.RawMessage `json:"snapshot"`
}

// checkpointOpts carries the -checkpoint-every/-checkpoint-out/-resume
// flags into the scenario runner. The zero value means neither.
type checkpointOpts struct {
	resume string // checkpoint file to resume from ("" = fresh run)
	path   string // periodic checkpoint output file ("" = no checkpoints)
	every  int    // ticks between checkpoints when path is set
}

// compactJSON returns data with insignificant whitespace removed, so
// stored and presented scenario bytes compare format-independently.
func compactJSON(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeFileAtomic writes data via a temp file in the same directory and
// a rename, so the destination always holds a complete checkpoint.
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// resumeScenario loads a checkpoint written by a run of the same
// scenario and rebuilds its world. The snapshot envelope's config digest
// rejects mismatched machine/scheduler/kyoto/monitor/seed/fidelity
// settings; the stored scenario bytes reject everything else that would
// diverge the report (VM list, warmup/ticks windows).
func resumeScenario(cfg kyoto.WorldConfig, raw []byte, path string, warmup, total uint64) (*kyoto.World, []kyoto.Counters, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var c cliCheckpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s is not a kyotosim checkpoint (truncated or corrupted): %w", path, err)
	}
	if c.Schema != cliCheckpointSchema {
		return nil, nil, fmt.Errorf("checkpoint %s has schema %q, this build reads %q", path, c.Schema, cliCheckpointSchema)
	}
	// The digest check first: a wrong seed, fidelity or host setup is a
	// configuration error and should say so, whatever else differs.
	w, err := kyoto.Resume(cfg, c.Snapshot)
	if err != nil {
		return nil, nil, fmt.Errorf("resuming %s: %w", path, err)
	}
	want, err := compactJSON(raw)
	if err != nil {
		return nil, nil, err
	}
	got, err := compactJSON(c.Scenario)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s carries an invalid scenario: %w", path, err)
	}
	if !bytes.Equal(want, got) {
		return nil, nil, fmt.Errorf("checkpoint %s was taken under a different scenario — resume with the exact scenario file of the checkpointed run", path)
	}
	if c.Tick != w.Now() {
		return nil, nil, fmt.Errorf("checkpoint %s records tick %d but its world clock is %d — file corrupted", path, c.Tick, w.Now())
	}
	if c.Tick > total {
		return nil, nil, fmt.Errorf("checkpoint %s is at tick %d, beyond the scenario's %d-tick horizon", path, c.Tick, total)
	}
	if c.Tick >= warmup && c.Before == nil {
		return nil, nil, fmt.Errorf("checkpoint %s is past warmup but carries no baseline counters — file corrupted", path)
	}
	return w, c.Before, nil
}

// executeScenario runs the single-host scenario, optionally resuming
// from and/or writing checkpoints, and prints the per-VM report. With
// zero checkpointOpts this is the plain straight-through run; a resumed
// run produces byte-identical report output.
func executeScenario(sc scenario, raw []byte, fid kyoto.Fidelity, ck checkpointOpts, out io.Writer) error {
	cfg, err := worldConfig(sc, fid)
	if err != nil {
		return err
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario has no VMs")
	}
	warmup, ticks := windows(sc)
	total := uint64(warmup + ticks)

	var w *kyoto.World
	var before []kyoto.Counters
	if ck.resume != "" {
		w, before, err = resumeScenario(cfg, raw, ck.resume, uint64(warmup), total)
		if err != nil {
			return err
		}
	} else {
		w, err = kyoto.NewWorld(cfg)
		if err != nil {
			return err
		}
		for _, s := range sc.VMs {
			if _, err := w.AddVM(s.toSpec()); err != nil {
				return err
			}
		}
	}
	// The snapshot preserves AddVM order, so the world's VM list lines up
	// with the scenario's rows on fresh and resumed runs alike.
	vms := w.VMs()
	if len(vms) != len(sc.VMs) {
		return fmt.Errorf("checkpoint world has %d VMs, scenario declares %d", len(vms), len(sc.VMs))
	}

	writeCk := func(tick uint64) error {
		snap, err := kyoto.Snapshot(w)
		if err != nil {
			return err
		}
		compact, err := compactJSON(raw)
		if err != nil {
			return err
		}
		data, err := json.Marshal(cliCheckpoint{
			Schema: cliCheckpointSchema, Scenario: compact,
			Tick: tick, Before: before, Snapshot: snap,
		})
		if err != nil {
			return err
		}
		return writeFileAtomic(ck.path, append(data, '\n'))
	}

	// Chunked run loop: boundaries at the warmup end (to capture the
	// measurement baseline) and at every checkpoint multiple. Boundaries
	// only split RunTicks calls, so the simulation is tick-for-tick the
	// plain two-call run.
	lastWritten := uint64(1<<64 - 1)
	for t := w.Now(); t < total; t = w.Now() {
		next := total
		if t < uint64(warmup) {
			next = uint64(warmup)
		}
		if ck.path != "" {
			if c := (t/uint64(ck.every) + 1) * uint64(ck.every); c < next {
				next = c
			}
		}
		w.RunTicks(int(next - t))
		if next >= uint64(warmup) && before == nil {
			before = make([]kyoto.Counters, len(vms))
			for i, v := range vms {
				before[i] = v.Counters()
			}
		}
		if ck.path != "" && next%uint64(ck.every) == 0 {
			if err := writeCk(next); err != nil {
				return err
			}
			lastWritten = next
		}
	}
	if ck.path != "" && lastWritten != total {
		// The final checkpoint is always the completed run, whatever the
		// cadence, so a resume from it replays only the report.
		if err := writeCk(total); err != nil {
			return err
		}
	}

	fmt.Fprintf(out, "machine:\n%s\n", w.MachineTable())
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vm\tapp\tIPC\tMPKI\teq1 (misses/ms)\tCPU ms\tpunishments")
	for i, v := range vms {
		statsRow(tw, "", v, before[i])
	}
	return tw.Flush()
}
