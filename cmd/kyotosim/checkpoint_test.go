package main

// Acceptance tests for -checkpoint-every/-checkpoint-out/-resume: flag
// cross-validation, byte-identical scenario resume (including from a
// genuinely mid-run checkpoint built against the public API), the
// config-digest errors on mismatched seed/fidelity/scenario, and sweep
// checkpoints that resume and merge byte-identically with serial runs.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kyoto"
)

func TestCheckpointFlagValidation(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	scn := filepath.Join(dir, "s.json")
	if err := os.WriteFile(scn, []byte(exampleScenario), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]string{
		"zero-interval":        {"-scenario", scn, "-checkpoint-every", "0", "-checkpoint-out", ck},
		"negative-interval":    {"-scenario", scn, "-checkpoint-every", "-3", "-checkpoint-out", ck},
		"every-without-out":    {"-scenario", scn, "-checkpoint-every", "5"},
		"out-without-every":    {"-scenario", scn, "-checkpoint-out", ck},
		"resume-missing-file":  {"-scenario", scn, "-resume", filepath.Join(dir, "absent.json")},
		"fleet-scenario":       {"-scenario", scn, "-hosts", "2", "-checkpoint-every", "5", "-checkpoint-out", ck},
		"merge-mode":           {"-churn", "5", "-merge", "x.json", "-checkpoint-every", "5", "-checkpoint-out", ck},
		"two-tier":             {"-churn", "5", "-fidelity", "two-tier", "-checkpoint-every", "5", "-checkpoint-out", ck},
		"sweep-path-disagrees": {"-churn", "5", "-checkpoint-every", "1", "-checkpoint-out", ck, "-resume", filepath.Join(dir, "other.json")},
	}
	// The disagreeing-path case needs the resume file to exist so the
	// earlier existence check does not mask the real error.
	if err := os.WriteFile(filepath.Join(dir, "other.json"), []byte("{}"), 0o600); err != nil {
		t.Fatal(err)
	}
	for name, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioCheckpointResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "s.json")
	ck := filepath.Join(dir, "ck.json")
	if err := os.WriteFile(scn, []byte(exampleScenario), 0o600); err != nil {
		t.Fatal(err)
	}

	var plain strings.Builder
	if err := run([]string{"-scenario", scn}, &plain); err != nil {
		t.Fatal(err)
	}
	// Checkpointing must not perturb the run: the report is identical.
	var ckRun strings.Builder
	if err := run([]string{"-scenario", scn, "-checkpoint-every", "7", "-checkpoint-out", ck}, &ckRun); err != nil {
		t.Fatal(err)
	}
	if plain.String() != ckRun.String() {
		t.Fatalf("checkpointing perturbed the run:\n--- plain\n%s\n--- checkpointed\n%s", plain.String(), ckRun.String())
	}
	// Resume from the final checkpoint replays only the report.
	var resumed strings.Builder
	if err := run([]string{"-scenario", scn, "-resume", ck}, &resumed); err != nil {
		t.Fatal(err)
	}
	if plain.String() != resumed.String() {
		t.Fatalf("resumed report differs:\n--- plain\n%s\n--- resumed\n%s", plain.String(), resumed.String())
	}

	// A genuinely mid-run checkpoint, built against the public API the
	// way a killed run would have left it (tick 20 of 72, past warmup):
	// the CLI must continue it to a byte-identical report.
	var sc scenario
	if err := json.Unmarshal([]byte(exampleScenario), &sc); err != nil {
		t.Fatal(err)
	}
	cfg, err := worldConfig(sc, kyoto.FidelityExact)
	if err != nil {
		t.Fatal(err)
	}
	w, err := kyoto.NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sc.VMs {
		if _, err := w.AddVM(s.toSpec()); err != nil {
			t.Fatal(err)
		}
	}
	warmup, _ := windows(sc)
	w.RunTicks(warmup)
	before := make([]kyoto.Counters, 0, len(w.VMs()))
	for _, v := range w.VMs() {
		before = append(before, v.Counters())
	}
	w.RunTicks(8)
	snap, err := kyoto.Snapshot(w)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := compactJSON([]byte(exampleScenario))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := json.Marshal(cliCheckpoint{
		Schema: cliCheckpointSchema, Scenario: compact,
		Tick: w.Now(), Before: before, Snapshot: snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	midPath := filepath.Join(dir, "mid.json")
	if err := os.WriteFile(midPath, mid, 0o600); err != nil {
		t.Fatal(err)
	}
	var fromMid strings.Builder
	if err := run([]string{"-scenario", scn, "-resume", midPath}, &fromMid); err != nil {
		t.Fatal(err)
	}
	if plain.String() != fromMid.String() {
		t.Fatalf("mid-run resume diverged:\n--- plain\n%s\n--- resumed\n%s", plain.String(), fromMid.String())
	}
}

func TestScenarioCheckpointMismatchErrors(t *testing.T) {
	dir := t.TempDir()
	scn := filepath.Join(dir, "s.json")
	ck := filepath.Join(dir, "ck.json")
	if err := os.WriteFile(scn, []byte(exampleScenario), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", scn, "-checkpoint-every", "10", "-checkpoint-out", ck}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	// A different seed or fidelity changes the world configuration: the
	// resume must fail with the snapshot config-digest error.
	otherSeed := filepath.Join(dir, "seed.json")
	if err := os.WriteFile(otherSeed, []byte(strings.Replace(exampleScenario, `"seed": 1`, `"seed": 2`, 1)), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", otherSeed, "-resume", ck}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched seed: %v", err)
	}
	if err := run([]string{"-scenario", scn, "-fidelity", "analytic", "-resume", ck}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched fidelity: %v", err)
	}

	// The digest cannot see the VM list or the tick windows; the stored
	// scenario bytes must catch those.
	otherTicks := filepath.Join(dir, "ticks.json")
	if err := os.WriteFile(otherTicks, []byte(strings.Replace(exampleScenario, `"ticks": 60`, `"ticks": 50`, 1)), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", otherTicks, "-resume", ck}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "different scenario") {
		t.Fatalf("mismatched ticks: %v", err)
	}

	// Truncated and non-JSON checkpoints must fail cleanly.
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, data[:len(data)/2], 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", scn, "-resume", bad}, &strings.Builder{}); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	if err := os.WriteFile(bad, []byte("not a checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", scn, "-resume", bad}, &strings.Builder{}); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
}

// TestSweepCheckpointResumeMergesWithSerial is the acceptance criterion
// for sweep-mode checkpointing: checkpointed shard runs, their fully
// cached -resume re-runs, and the merge of the resumed envelopes all
// reproduce the serial sweep byte-for-byte.
func TestSweepCheckpointResumeMergesWithSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace on three fleets several times")
	}
	dir := t.TempDir()
	base := []string{"-churn", "6", "-hosts", "2", "-seed", "7"}
	with := func(extra ...string) []string { return append(append([]string{}, base...), extra...) }

	var serial strings.Builder
	if err := run(base, &serial); err != nil {
		t.Fatal(err)
	}

	// The in-process sweep with checkpointing is byte-identical, and its
	// -resume re-run reads everything from the checkpoint.
	full := filepath.Join(dir, "full.json")
	var ckRun, ckResumed strings.Builder
	if err := run(with("-checkpoint-every", "1", "-checkpoint-out", full), &ckRun); err != nil {
		t.Fatal(err)
	}
	if serial.String() != ckRun.String() {
		t.Fatalf("checkpointed sweep differs from serial:\n--- serial\n%s\n--- checkpointed\n%s", serial.String(), ckRun.String())
	}
	if err := run(with("-resume", full), &ckResumed); err != nil {
		t.Fatal(err)
	}
	if serial.String() != ckResumed.String() {
		t.Fatalf("resumed sweep differs from serial:\n--- serial\n%s\n--- resumed\n%s", serial.String(), ckResumed.String())
	}

	// Checkpointed shard runs write envelopes identical to plain shards;
	// resuming each shard from its (complete) checkpoint and merging
	// reproduces the serial table.
	for _, spec := range []string{"0/2", "1/2"} {
		k := spec[:1]
		if err := run(with("-shard", spec, "-shard-out", filepath.Join(dir, "plain-"+k+".json")), &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		if err := run(with("-shard", spec, "-shard-out", filepath.Join(dir, "ck-"+k+".json"),
			"-checkpoint-every", "1", "-checkpoint-out", filepath.Join(dir, "state-"+k+".json")), &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		plain, err := os.ReadFile(filepath.Join(dir, "plain-"+k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		ck, err := os.ReadFile(filepath.Join(dir, "ck-"+k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(ck) {
			t.Fatalf("shard %s: checkpointed envelope differs from plain", spec)
		}
		// The resumed re-run rewrites the envelope from the checkpoint.
		if err := run(with("-shard", spec, "-shard-out", filepath.Join(dir, "res-"+k+".json"),
			"-resume", filepath.Join(dir, "state-"+k+".json")), &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(filepath.Join(dir, "res-"+k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(res) {
			t.Fatalf("shard %s: resumed envelope differs from plain", spec)
		}
	}
	var merged strings.Builder
	if err := run(with("-merge", filepath.Join(dir, "res-*.json")), &merged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != merged.String() {
		t.Fatalf("merge of resumed shards differs from serial:\n--- serial\n%s\n--- merged\n%s", serial.String(), merged.String())
	}

	// A checkpoint from different flags must be refused: a different
	// fleet size keeps the job plan's shape but changes the config
	// digest, and a different churn seed changes the plan itself.
	if err := run([]string{"-churn", "6", "-hosts", "3", "-seed", "7", "-resume", full}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched sweep resume (hosts): %v", err)
	}
	if err := run([]string{"-churn", "6", "-hosts", "2", "-seed", "8", "-resume", full}, &strings.Builder{}); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("mismatched sweep resume (seed): %v", err)
	}
}

// TestSeedsCheckpointResume locks -seeds composing with checkpointing:
// the checkpointed statistical sweep and its resume are byte-identical
// to the plain -seeds run.
func TestSeedsCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace under two seeds twice")
	}
	dir := t.TempDir()
	base := []string{"-churn", "6", "-hosts", "2", "-seed", "7", "-seeds", "2"}
	var plain strings.Builder
	if err := run(base, &plain); err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(dir, "seeds.json")
	var ckRun, resumed strings.Builder
	if err := run(append(append([]string{}, base...), "-checkpoint-every", "3", "-checkpoint-out", ck), &ckRun); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-resume", ck), &resumed); err != nil {
		t.Fatal(err)
	}
	if plain.String() != ckRun.String() || plain.String() != resumed.String() {
		t.Fatalf("seeds checkpoint/resume diverged from plain run:\n--- plain\n%s\n--- checkpointed\n%s\n--- resumed\n%s",
			plain.String(), ckRun.String(), resumed.String())
	}
}
