// Command kyotosim runs an arbitrary scenario described in JSON on the
// simulated testbed and reports per-VM statistics — the general-purpose
// front door to the simulator that the paper-specific kyotobench builds on.
//
// Usage:
//
//	kyotosim -scenario scenario.json
//	kyotosim -example | kyotosim -scenario -
//	kyotosim -scenario fleet.json -hosts 8 -placer kyoto
//	kyotosim -trace trace.json -hosts 4
//	kyotosim -churn 24 -hosts 4 -seed 7 [-trace-out churn.json]
//	kyotosim -churn 24 -hosts 4 -migrate reactive -pending fifo
//	kyotosim -trace trace.json -migrate topo -pending deadline -pending-deadline 40
//
// With -hosts N > 1 the scenario runs on a simulated fleet instead of a
// single machine: every host is built from the scenario's machine /
// scheduler / kyoto settings, the -placer policy decides which host gets
// each VM (first-fit bin-packing, contention-aware spread, or Kyoto
// llc_cap admission control), and the report gains a host column. VMs the
// policy rejects are reported, not fatal — rejection is Kyoto admission
// control doing its job.
//
// With -trace the simulator leaves fixed-population mode entirely: the
// file (JSON or CSV, schema in internal/arrivals/README.md) is an
// arrival/departure trace that is replayed through all three placement
// policies on identically seeded -hosts fleets, and the report is the
// per-policy rejection-rate / utilization / p50-p95-p99
// normalized-performance comparison table. -churn N does the same for a
// seeded synthetic trace of N VMs (Poisson-style arrivals, heavy-tailed
// lifetimes); -trace-out writes the synthesized trace for later replay.
//
// Adding -migrate and/or -pending turns the replay into a migration
// sweep: reactive operation (live migration by the named rebalancer, a
// Borg-style pending queue for rejected arrivals) is compared against
// plain no-migration replays, across all three placers on identically
// seeded fleets. The table gains queue-wait percentiles and migration
// counts; -big-llc makes the highest-ID host heterogeneous (a larger
// LLC) so the topology-aware rebalancer has somewhere to steer
// polluters — applied automatically (factor 2) whenever a topo arm is
// swept, and never otherwise, so non-topo sweeps stay comparable to
// plain -trace runs. -migrate signature sweeps the change-detection
// rebalancer, which migrates only on confirmed CUSUM change points in
// per-VM pollution rates; its detector knobs are -detect-alpha,
// -detect-drift, -detect-threshold and -detect-warmup. See
// internal/cluster/README.md for the policies.
//
// Both sweep modes shard across processes: -shard k/n runs the k-th of n
// shards of the sweep's job plan and writes a JSON envelope instead of
// the table, and -merge folds all n envelopes back into the table,
// bit-identically to the unsharded sweep. The merge invocation must
// repeat the shard runs' flags (trace/churn, hosts, seed, migrate,
// pending, ...):
//
//	kyotosim -churn 24 -hosts 4 -migrate all -shard 0/2 -shard-out s0.json
//	kyotosim -churn 24 -hosts 4 -migrate all -shard 1/2 -shard-out s1.json
//	kyotosim -churn 24 -hosts 4 -migrate all -merge 's*.json'
//
// Runs are checkpointable: -checkpoint-every N -checkpoint-out f
// periodically writes a resumable checkpoint (atomically, so a kill
// mid-write leaves the previous one intact), and -resume f continues a
// killed run, producing output byte-identical to an uninterrupted run.
// In single-host scenario mode N counts ticks and the checkpoint wraps
// the versioned world snapshot plus the scenario and report baseline;
// resuming under a different seed/fidelity/machine fails with the
// snapshot config-digest error, and any other scenario change is caught
// against the stored scenario bytes. In the -trace/-churn sweep modes
// (including -seeds and -shard) N counts completed jobs and the
// checkpoint is a partial shard envelope; resumed shard envelopes merge
// byte-identically with serial runs:
//
//	kyotosim -scenario s.json -checkpoint-every 50 -checkpoint-out ck.json
//	kyotosim -scenario s.json -resume ck.json
//	kyotosim -churn 24 -hosts 4 -seeds 100 -checkpoint-every 5 -checkpoint-out sweep-ck.json
//	kyotosim -churn 24 -hosts 4 -seeds 100 -resume sweep-ck.json
//
// -fidelity selects the cache-model tier: exact (the default,
// per-access cache simulation), analytic (the fast LLC-occupancy model:
// no per-access work, ~100x faster, modeled rather than simulated miss
// rates), or two-tier (-trace/-churn only: the whole sweep runs on the
// analytic tier, then the -confirm-top arms with the best analytic p99
// floor are re-run exact). exact and analytic compose with
// -shard/-merge/-seeds; the fidelity enters the sweep's config digest,
// so shard envelopes produced under mismatched tiers refuse to merge:
//
//	kyotosim -churn 1000 -hosts 4 -fidelity analytic
//	kyotosim -trace trace.json -fidelity two-tier -confirm-top 2
//
// -seeds N is statistical mode: the whole sweep (plain or migration) is
// replicated under N consecutive seeds starting at -seed, and the table
// reports each metric's across-seed mean, p50/p95/p99 and 95%
// confidence intervals instead of single numbers. The seed sweep is
// itself a sweep, so -seeds composes with -shard/-merge and the merged
// statistics are bit-identical for every shard count:
//
//	kyotosim -trace trace.json -hosts 4 -seeds 200
//	kyotosim -churn 24 -hosts 4 -seeds 100 -shard 0/4 -shard-out s0.json
//
// Scenario schema (JSON):
//
//	{
//	  "machine":   "table1" | "r420",
//	  "scheduler": "credit" | "cfs" | "pisces",
//	  "kyoto":     true,
//	  "monitor":   "counters" | "shadow",
//	  "seed":      1,
//	  "warmup":    12,
//	  "ticks":     60,
//	  "vms": [
//	    {"name": "web", "app": "gcc", "pins": [0], "llc_cap": 250},
//	    {"name": "batch", "app": "lbm", "pins": [1], "llc_cap": 250,
//	     "weight": 256, "cap_percent": 0, "home_node": 0,
//	     "memory_mb": 64}
//	  ]
//	}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"kyoto"
	"kyoto/internal/profiling"
)

// scenario is the JSON schema.
type scenario struct {
	Machine   string   `json:"machine"`
	Scheduler string   `json:"scheduler"`
	Kyoto     bool     `json:"kyoto"`
	Monitor   string   `json:"monitor"`
	Seed      uint64   `json:"seed"`
	Warmup    int      `json:"warmup"`
	Ticks     int      `json:"ticks"`
	VMs       []vmSpec `json:"vms"`
}

type vmSpec struct {
	Name       string  `json:"name"`
	App        string  `json:"app"`
	Pins       []int   `json:"pins"`
	LLCCap     float64 `json:"llc_cap"`
	Weight     int64   `json:"weight"`
	CapPercent int     `json:"cap_percent"`
	HomeNode   int     `json:"home_node"`
	VCPUs      int     `json:"vcpus"`
	// MemoryMB is the fleet-mode memory booking (default 64 MB).
	MemoryMB int `json:"memory_mb"`
}

// toSpec maps the JSON shape onto the public VM spec.
func (s vmSpec) toSpec() kyoto.VMSpec {
	return kyoto.VMSpec{
		Name: s.Name, App: s.App, Pins: s.Pins, LLCCap: s.LLCCap,
		Weight: s.Weight, CapPercent: s.CapPercent,
		HomeNode: s.HomeNode, VCPUs: s.VCPUs,
	}
}

const exampleScenario = `{
  "machine": "table1",
  "scheduler": "credit",
  "kyoto": true,
  "seed": 1,
  "warmup": 12,
  "ticks": 60,
  "vms": [
    {"name": "web", "app": "gcc", "pins": [0], "llc_cap": 250},
    {"name": "batch", "app": "lbm", "pins": [1], "llc_cap": 250}
  ]
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kyotosim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("kyotosim", flag.ContinueOnError)
	var (
		path    = fs.String("scenario", "", "scenario JSON file ('-' for stdin)")
		example = fs.Bool("example", false, "print an example scenario and exit")
		apps    = fs.Bool("apps", false, "list built-in application profiles and exit")
		hosts   = fs.Int("hosts", 1, "fleet size; > 1 runs the scenario on a cluster")
		placer  = fs.String("placer", "first-fit", "fleet placement policy: first-fit, spread or kyoto")

		tracePath = fs.String("trace", "", "arrival/departure trace file (.json or .csv); replays it through all three placers")
		churn     = fs.Int("churn", 0, "synthesize a churn trace of this many VMs and replay it through all three placers")
		seed      = fs.Uint64("seed", 1, "seed for -trace/-churn fleets and the synthetic generator")
		horizon   = fs.Uint64("churn-horizon", 0, "ticks the synthetic arrivals spread over (default 120)")
		meanLife  = fs.Float64("churn-life", 0, "mean synthetic VM lifetime in ticks (default 45)")
		traceOut  = fs.String("trace-out", "", "write the synthesized -churn trace to this JSON file")
		lockstep  = fs.Bool("lockstep", false, "replay on the eager lockstep fleet engine instead of the lazy event-horizon default (bit-identical results; for baseline timing)")

		migrate      = fs.String("migrate", "", "live-migration sweep: compare no-migration against this rebalancer (reactive, topo, signature, or all for every one) across all three placers")
		pending      = fs.String("pending", "", "pending-queue policy for the migration sweep: none, fifo, deadline or sjf (default fifo once -migrate/-pending engage the sweep)")
		migrateEvery = fs.Uint64("migrate-every", 0, "rebalance epoch in ticks (default 12)")
		downtime     = fs.Int("migrate-downtime", 0, "per-migration blackout in ticks (default 0)")
		maxWait      = fs.Uint64("pending-deadline", 0, "max queue wait in ticks under -pending deadline (default 60)")
		bigLLC       = fs.Int("big-llc", -1, "LLC scale factor of the sweep's highest-ID host (power of two; 0 = homogeneous; default: 2 when a topo arm is swept, else 0 so non-topo sweeps stay comparable to plain -trace runs)")

		detectAlpha     = fs.Float64("detect-alpha", 0, "signature arm: EWMA smoothing factor in (0,1] for the change-point detector (default 0.2)")
		detectDrift     = fs.Float64("detect-drift", 0, "signature arm: CUSUM drift (slack) in normalized units, >= 0 (default 0.5)")
		detectThreshold = fs.Float64("detect-threshold", 0, "signature arm: CUSUM fire threshold in normalized units, > 0 (default 5)")
		detectWarmup    = fs.Int("detect-warmup", 0, "signature arm: samples the detector observes before arming (default 4)")

		seeds = fs.Int("seeds", 0, "statistical mode: replicate the -trace/-churn sweep under this many consecutive seeds (starting at -seed) and report per-metric means, percentiles and 95% confidence intervals")

		fidelity   = fs.String("fidelity", "exact", "cache-model tier: exact (per-access simulation), analytic (fast LLC-occupancy model), or two-tier (-trace/-churn only: broad analytic pass, top arms confirmed exact)")
		confirmTop = fs.Int("confirm-top", 1, "arms the two-tier mode re-runs on the exact tier")

		shardSpec  = fs.String("shard", "", "run one shard (k/n) of the -trace/-churn sweep's job plan and write its envelope instead of the table")
		shardOut   = fs.String("shard-out", "-", "shard envelope output path ('-' = stdout)")
		mergeGlobs = fs.String("merge", "", "comma-separated shard envelope files/globs to merge into the sweep's table (repeat the shard runs' flags)")

		ckEvery    = fs.Int("checkpoint-every", 0, "write a resumable checkpoint every N ticks (scenario mode) or N completed jobs (-trace/-churn sweeps); requires -checkpoint-out")
		ckOut      = fs.String("checkpoint-out", "", "checkpoint file the run writes (atomically) and a killed run resumes from with -resume")
		resumeFrom = fs.String("resume", "", "resume from this checkpoint file; the run must repeat the checkpointed run's scenario/flags and its output is byte-identical to an uninterrupted run")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer profiling.StopInto(stopProf, &err)
	if *example {
		fmt.Fprintln(out, exampleScenario)
		return nil
	}
	if *apps {
		for _, n := range kyoto.ProfileNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}
	// Flags from the other mode must not be silently dropped, in either
	// direction: trace/churn mode rejects scenario flags, scenario mode
	// rejects trace/churn flags.
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	twoTier := *fidelity == "two-tier"
	var fid kyoto.Fidelity
	if !twoTier {
		if fid, err = kyoto.ParseFidelity(*fidelity); err != nil {
			return err
		}
	}
	if set["confirm-top"] && !twoTier {
		return fmt.Errorf("-confirm-top only applies with -fidelity two-tier")
	}
	if twoTier && *confirmTop < 1 {
		return fmt.Errorf("-confirm-top must be at least 1, got %d", *confirmTop)
	}
	// Checkpoint flags: -checkpoint-every/-checkpoint-out checkpoint a
	// run, -resume continues one. Valid in single-host scenario mode and
	// the sweep modes; validated here, routed below.
	checkpointing := set["checkpoint-every"] || set["checkpoint-out"] || set["resume"]
	if set["checkpoint-every"] && *ckEvery < 1 {
		return fmt.Errorf("-checkpoint-every must be at least 1, got %d", *ckEvery)
	}
	if set["checkpoint-every"] != set["checkpoint-out"] {
		return fmt.Errorf("-checkpoint-every and -checkpoint-out go together (got one without the other)")
	}
	if *resumeFrom != "" {
		if _, err := os.Stat(*resumeFrom); err != nil {
			return fmt.Errorf("cannot resume: %w", err)
		}
	}
	if *tracePath == "" && *churn == 0 {
		for _, name := range []string{"seed", "churn-horizon", "churn-life", "trace-out", "lockstep",
			"migrate", "pending", "migrate-every", "migrate-downtime", "pending-deadline", "big-llc",
			"detect-alpha", "detect-drift", "detect-threshold", "detect-warmup",
			"seeds", "shard", "shard-out", "merge"} {
			if set[name] {
				return fmt.Errorf("-%s only applies in -trace/-churn mode", name)
			}
		}
	}
	if *tracePath != "" || *churn > 0 {
		if *hosts < 1 {
			return fmt.Errorf("-hosts must be at least 1, got %d", *hosts)
		}
		if *tracePath != "" && *churn > 0 {
			return fmt.Errorf("-trace and -churn are mutually exclusive")
		}
		if *path != "" {
			return fmt.Errorf("-scenario does not apply in -trace/-churn mode")
		}
		if set["placer"] {
			return fmt.Errorf("-placer does not apply in -trace/-churn mode: the trace is swept through all three placers")
		}
		if *tracePath != "" && (set["trace-out"] || set["churn-horizon"] || set["churn-life"]) {
			return fmt.Errorf("-trace-out/-churn-horizon/-churn-life only apply with -churn")
		}
		migrateMode := set["migrate"] || set["pending"]
		if set["seeds"] && *seeds < 1 {
			return fmt.Errorf("-seeds must be at least 1, got %d", *seeds)
		}
		if set["big-llc"] && *bigLLC < 0 {
			return fmt.Errorf("-big-llc must be >= 0, got %d", *bigLLC)
		}
		if *shardSpec != "" && *mergeGlobs != "" {
			return fmt.Errorf("-shard and -merge are mutually exclusive (run shards first, merge after)")
		}
		if set["shard-out"] && *shardSpec == "" {
			return fmt.Errorf("-shard-out only applies with -shard")
		}
		if (*shardSpec != "" || *mergeGlobs != "") && set["trace-out"] {
			// N shard processes would race writing the same file, and the
			// confirmation line would pollute a stdout envelope; write the
			// trace once, separately.
			return fmt.Errorf("-trace-out does not apply with -shard/-merge (synthesize the trace in its own run)")
		}
		if *mergeGlobs != "" && checkpointing {
			return fmt.Errorf("-checkpoint/-resume apply to runs, not -merge (merge re-reads completed envelopes)")
		}
		if !migrateMode {
			for _, name := range []string{"migrate-every", "migrate-downtime", "pending-deadline", "big-llc"} {
				if set[name] {
					return fmt.Errorf("-%s only applies with -migrate/-pending", name)
				}
			}
		}
		// Detector knobs tune the signature rebalancer's change-point
		// detector; with no signature arm in the sweep they would be
		// silently dropped.
		signatureArm := *migrate == "signature" || *migrate == "all"
		for _, name := range []string{"detect-alpha", "detect-drift", "detect-threshold", "detect-warmup"} {
			if set[name] && !signatureArm {
				return fmt.Errorf("-%s only applies with -migrate signature (or -migrate all)", name)
			}
		}
		detector := kyoto.DetectorConfig{
			Alpha:     *detectAlpha,
			Drift:     *detectDrift,
			Threshold: *detectThreshold,
			Warmup:    *detectWarmup,
		}
		// A shard run's stdout is just the envelope (or nothing, with
		// -shard-out to a file): the informational preamble would pollute
		// the merged stream sweep_shards.sh pipes around.
		quiet := *shardSpec != ""
		var tr kyoto.Trace
		if *tracePath != "" {
			tr, err = kyoto.LoadTrace(*tracePath)
			if err != nil {
				return err
			}
			if !quiet {
				fmt.Fprintf(out, "trace: %s (%d events)\n", *tracePath, len(tr.Events))
			}
		} else {
			cfg := kyoto.ChurnConfig{Seed: *seed, VMs: *churn, Horizon: *horizon, MeanLifetime: *meanLife}
			tr = kyoto.SynthesizeTrace(cfg)
			if !quiet {
				fmt.Fprintf(out, "synthetic churn: %d VMs, seed %d\n", *churn, *seed)
			}
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					return err
				}
				if err := tr.WriteJSON(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(out, "wrote %s\n", *traceOut)
			}
		}
		// In the sweep modes the checkpoint file both receives progress and
		// seeds a resume, so -resume and -checkpoint-out name the same file
		// and either one engages job-level checkpointing.
		ckPath := *ckOut
		if ckPath == "" {
			ckPath = *resumeFrom
		}
		if *ckOut != "" && *resumeFrom != "" && *ckOut != *resumeFrom {
			return fmt.Errorf("in sweep modes -resume and -checkpoint-out name the same checkpoint file; got %q and %q", *resumeFrom, *ckOut)
		}
		ckEveryJobs := *ckEvery
		if ckEveryJobs == 0 {
			ckEveryJobs = 1
		}
		dispatch := sweepDispatch{shardSpec: *shardSpec, shardOut: *shardOut, mergeGlobs: *mergeGlobs,
			ckPath: ckPath, ckEvery: ckEveryJobs}
		if twoTier {
			// The two-tier mode's exact pass depends on the analytic
			// ranking, so it cannot be planned as independent jobs up
			// front; it runs in-process only.
			if *shardSpec != "" || *mergeGlobs != "" {
				return fmt.Errorf("-fidelity two-tier does not shard (-shard/-merge); shard each tier separately with -fidelity analytic/exact")
			}
			if checkpointing {
				return fmt.Errorf("-fidelity two-tier does not checkpoint (its exact pass depends on the analytic ranking); checkpoint each tier separately with -fidelity analytic/exact")
			}
			if *seeds > 0 {
				return fmt.Errorf("-fidelity two-tier does not compose with -seeds; replicate each tier separately with -fidelity analytic/exact")
			}
			if migrateMode {
				return fmt.Errorf("-fidelity two-tier applies to the plain trace sweep; run the migration sweep with -fidelity analytic or exact")
			}
			return executeTwoTierTrace(tr, *hosts, *seed, *confirmTop, *lockstep, out)
		}
		if migrateMode {
			return executeMigrationSweep(tr, *hosts, *seed, *seeds, fid, *migrate, *pending,
				*migrateEvery, *downtime, *maxWait, *bigLLC, detector, *lockstep, dispatch, out)
		}
		return executeTrace(tr, *hosts, *seed, *seeds, fid, *lockstep, dispatch, out)
	}
	if twoTier {
		return fmt.Errorf("-fidelity two-tier only applies in -trace/-churn mode")
	}
	if *path == "" {
		return fmt.Errorf("missing -scenario (use -example for a template)")
	}

	var raw []byte
	if *path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*path)
	}
	if err != nil {
		return err
	}
	var sc scenario
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return fmt.Errorf("parsing scenario: %w", err)
	}
	if *hosts < 1 {
		return fmt.Errorf("-hosts must be at least 1, got %d", *hosts)
	}
	placerKind, err := kyoto.PlacerKindByName(*placer)
	if err != nil {
		return err
	}
	if *hosts > 1 {
		if checkpointing {
			return fmt.Errorf("-checkpoint/-resume apply to single-host scenarios and -trace/-churn sweeps, not fleet scenario mode")
		}
		return executeFleet(sc, *hosts, fid, *placer, placerKind, out)
	}
	return executeScenario(sc, raw, fid, checkpointOpts{
		resume: *resumeFrom, path: *ckOut, every: *ckEvery,
	}, out)
}

// sweepDispatch carries the -shard/-merge and checkpoint flags into the
// sweep modes.
type sweepDispatch struct {
	shardSpec  string
	shardOut   string
	mergeGlobs string
	// ckPath, when non-empty, engages job-level checkpointing: completed
	// jobs are persisted there every ckEvery completions and a file
	// already present (from a killed run) is resumed instead of re-run.
	ckPath  string
	ckEvery int
}

// apply runs the sweep the way the flags ask: one shard written as an
// envelope, a merge of existing envelopes, or the whole sweep in-process
// (the default). It reports whether the caller should print the merged
// result (false after a shard run, whose only output is the envelope).
func (d sweepDispatch) apply(s kyoto.Sweep, out io.Writer) (bool, error) {
	switch {
	case d.shardSpec != "":
		k, n, err := kyoto.ParseShardSpec(d.shardSpec)
		if err != nil {
			return false, err
		}
		var env kyoto.ShardEnvelope
		if d.ckPath != "" {
			env, _, err = kyoto.RunSweepShardResumable(s, k, n, 0, d.ckPath, d.ckEvery)
		} else {
			env, err = kyoto.RunSweepShard(s, k, n, 0)
		}
		if err != nil {
			return false, err
		}
		return false, env.WriteFile(d.shardOut, out)
	case d.mergeGlobs != "":
		envs, err := kyoto.ReadShardEnvelopes(strings.Split(d.mergeGlobs, ","))
		if err != nil {
			return false, err
		}
		return true, kyoto.MergeShards(s, envs)
	default:
		if d.ckPath != "" {
			// The whole in-process sweep is shard 0 of 1, so the same
			// checkpoint machinery resumes it; merging the single envelope
			// reproduces the plain RunSweep result bit-identically.
			env, _, err := kyoto.RunSweepShardResumable(s, 0, 1, 0, d.ckPath, d.ckEvery)
			if err != nil {
				return false, err
			}
			return true, kyoto.MergeShards(s, []kyoto.ShardEnvelope{env})
		}
		return true, kyoto.RunSweep(s, 0)
	}
}

// executeSeedSweep runs the -seeds statistical mode: the seedable sweep
// is replicated under consecutive seeds starting at baseSeed, sharded or
// merged exactly like the underlying sweep, and the merged across-seed
// statistics table is printed (the per-seed digests are not — with many
// seeds they are noise).
func executeSeedSweep(proto kyoto.SeedableSweep, seeds int, baseSeed uint64, dispatch sweepDispatch, out io.Writer) error {
	ss, err := kyoto.NewSeedSweeper(proto, kyoto.SeedSweepConfig{Seeds: seeds, BaseSeed: baseSeed})
	if err != nil {
		return err
	}
	print, err := dispatch.apply(ss, out)
	if err != nil {
		return err
	}
	if !print {
		return nil
	}
	tbl, err := kyoto.SeedSweepTable(ss.Result())
	if err != nil {
		return err
	}
	fmt.Fprintln(out, tbl.String())
	return nil
}

// executeTwoTierTrace runs the trace sweep two-tier: broad analytic
// pass, top-k arms confirmed exact.
func executeTwoTierTrace(tr kyoto.Trace, hosts int, seed uint64, topK int, lockstep bool, out io.Writer) error {
	res, err := kyoto.SweepTraceTwoTier(tr, kyoto.TraceSweepConfig{Hosts: hosts, Seed: seed, Lockstep: lockstep}, topK)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		fmt.Fprintln(out, t.String())
	}
	return nil
}

// executeTrace replays the trace through all three placement policies and
// prints the comparison table plus a short per-policy rejection digest.
func executeTrace(tr kyoto.Trace, hosts int, seed uint64, seeds int, fid kyoto.Fidelity, lockstep bool, dispatch sweepDispatch, out io.Writer) error {
	s, err := kyoto.NewTraceSweeper(tr, kyoto.TraceSweepConfig{Hosts: hosts, Seed: seed, Fidelity: fid, Lockstep: lockstep})
	if err != nil {
		return err
	}
	if seeds > 0 {
		return executeSeedSweep(s, seeds, seed, dispatch, out)
	}
	print, err := dispatch.apply(s, out)
	if err != nil {
		return err
	}
	if !print {
		return nil
	}
	res := s.Result()
	fmt.Fprintln(out, res.Table().String())
	for _, row := range res.Rows {
		if row.Rejected == 0 {
			continue
		}
		fmt.Fprintf(out, "%s rejections:\n", row.Placer)
		for _, rec := range row.Replay.Records {
			if rec.Rejected {
				fmt.Fprintf(out, "  t=%d %s (%s): %s\n", rec.Submit, rec.Name, rec.App, rec.Reason)
			}
		}
	}
	return nil
}

// executeMigrationSweep runs the rebalancer x placer grid over the trace
// and prints the comparison table plus a per-combination migration digest.
func executeMigrationSweep(tr kyoto.Trace, hosts int, seed uint64, seeds int, fid kyoto.Fidelity, migrate, pending string,
	every uint64, downtime int, maxWait uint64, bigLLC int, detector kyoto.DetectorConfig, lockstep bool, dispatch sweepDispatch, out io.Writer) error {
	var rebalancers []string
	switch migrate {
	case "", "none":
		rebalancers = []string{"none"}
	case "all":
		rebalancers = kyoto.RebalancerNames()
	default:
		if _, err := kyoto.RebalancerByName(migrate); err != nil {
			return err
		}
		rebalancers = []string{"none", migrate}
	}
	if bigLLC < 0 {
		// Auto default: the topology-aware arm needs a bigger-LLC host to
		// steer polluters to; every other sweep stays homogeneous so its
		// no-migration baseline rows stay comparable to plain -trace runs.
		bigLLC = 0
		for _, name := range rebalancers {
			if name == "topo" {
				bigLLC = 2
			}
		}
	}
	if pending == "" {
		// The sweep exists to show the rejection-vs-wait trade-off, so the
		// queue defaults on; pass -pending none for drop-on-reject.
		pending = "fifo"
	}
	pp, err := kyoto.PendingPolicyByName(pending)
	if err != nil {
		return err
	}
	s, err := kyoto.NewMigrationSweeper(tr, kyoto.MigrationSweepConfig{
		Hosts:          hosts,
		Seed:           seed,
		Lockstep:       lockstep,
		Rebalancers:    rebalancers,
		RebalanceEvery: every,
		Downtime:       downtime,
		Pending:        pp,
		MaxWait:        maxWait,
		BigLLCFactor:   bigLLC,
		Detector:       detector,
		Fidelity:       fid,
	})
	if err != nil {
		return err
	}
	if seeds > 0 {
		return executeSeedSweep(s, seeds, seed, dispatch, out)
	}
	print, err := dispatch.apply(s, out)
	if err != nil {
		return err
	}
	if !print {
		return nil
	}
	res := s.Result()
	fmt.Fprintln(out, res.Table().String())
	for _, row := range res.Rows {
		if len(row.Replay.Migrations) == 0 {
			continue
		}
		fmt.Fprintf(out, "%s/%s migrations:\n", row.Placer, row.Rebalancer)
		for _, m := range row.Replay.Migrations {
			fmt.Fprintf(out, "  t=%d %s: host%d -> host%d (%s)\n", m.Tick, m.Name, m.SrcHost, m.DstHost, m.Reason)
		}
	}
	return nil
}

// worldConfig maps the scenario's host settings onto a WorldConfig.
func worldConfig(sc scenario, fid kyoto.Fidelity) (kyoto.WorldConfig, error) {
	cfg := kyoto.WorldConfig{Seed: sc.Seed, EnableKyoto: sc.Kyoto, Fidelity: fid}
	switch sc.Machine {
	case "", "table1":
		cfg.Machine = kyoto.TableOneMachine(sc.Seed)
	case "r420":
		cfg.Machine = kyoto.R420Machine(sc.Seed)
	default:
		return cfg, fmt.Errorf("unknown machine %q", sc.Machine)
	}
	switch sc.Scheduler {
	case "", "credit":
		cfg.Scheduler = kyoto.CreditScheduler
	case "cfs":
		cfg.Scheduler = kyoto.CFSScheduler
	case "pisces":
		cfg.Scheduler = kyoto.PiscesScheduler
	default:
		return cfg, fmt.Errorf("unknown scheduler %q", sc.Scheduler)
	}
	switch sc.Monitor {
	case "", "counters":
		cfg.Monitor = kyoto.MonitorCounters
	case "shadow":
		cfg.Monitor = kyoto.MonitorShadowSim
	default:
		return cfg, fmt.Errorf("unknown monitor %q", sc.Monitor)
	}
	return cfg, nil
}

// windows returns the scenario's warmup and measurement tick counts.
func windows(sc scenario) (warmup, ticks int) {
	warmup, ticks = sc.Warmup, sc.Ticks
	if warmup == 0 {
		warmup = 12
	}
	if ticks == 0 {
		ticks = 60
	}
	return warmup, ticks
}

// statsRow writes one VM's measurement-window report line.
func statsRow(tw io.Writer, prefix string, v *kyoto.VM, before kyoto.Counters) {
	d := v.Counters().Delta(before)
	fmt.Fprintf(tw, "%s%s\t%s\t%.4f\t%.2f\t%.1f\t%.1f\t%d\n",
		prefix, v.Name, v.App, d.IPC(), d.MissesPerKiloInstr(),
		kyoto.Equation1Value(d), float64(d.WallCycles())/100_000,
		v.Punishments)
}

// executeFleet runs the scenario on a cluster of identical hosts behind
// the named placement policy.
func executeFleet(sc scenario, hosts int, fid kyoto.Fidelity, placerName string, placer kyoto.PlacerKind, out io.Writer) error {
	cfg, err := worldConfig(sc, fid)
	if err != nil {
		return err
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario has no VMs")
	}
	c, err := kyoto.NewCluster(kyoto.ClusterConfig{Hosts: hosts, World: cfg, Placer: placer})
	if err != nil {
		return err
	}

	// rows parallels sc.VMs by index (names need not be unique): a row
	// holds either the placed VM or the policy's rejection.
	type row struct {
		v    *kyoto.VM
		host int
		err  error
	}
	rows := make([]row, len(sc.VMs))
	for i, s := range sc.VMs {
		p, err := c.Place(kyoto.ClusterVMSpec{VMSpec: s.toSpec(), MemoryMB: s.MemoryMB})
		if err != nil {
			if errors.Is(err, kyoto.ErrUnplaceable) {
				// Rejection is the policy speaking (Kyoto admission
				// refusing an oversubscribing permit, or a full fleet):
				// report it alongside the admitted VMs.
				rows[i] = row{err: err}
				continue
			}
			return err
		}
		rows[i] = row{v: p.VM, host: p.HostID}
	}

	warmup, ticks := windows(sc)
	c.RunTicks(warmup)
	before := make([]kyoto.Counters, len(rows))
	for i, r := range rows {
		if r.v != nil {
			before[i] = r.v.Counters()
		}
	}
	c.RunTicks(ticks)

	fmt.Fprintf(out, "fleet: %d hosts, placer %s\nper-host machine:\n%s\n",
		hosts, placerName, c.Host(0).MachineTable())
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vm\tapp\tIPC\tMPKI\teq1 (misses/ms)\tCPU ms\tpunishments")
	for i, r := range rows {
		if r.err != nil {
			fmt.Fprintf(tw, "%s\t-\tREJECTED\t\t\t\t(%v)\n", sc.VMs[i].Name, r.err)
			continue
		}
		statsRow(tw, fmt.Sprintf("host%d/", r.host), r.v, before[i])
	}
	return tw.Flush()
}
