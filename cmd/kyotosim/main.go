// Command kyotosim runs an arbitrary scenario described in JSON on the
// simulated testbed and reports per-VM statistics — the general-purpose
// front door to the simulator that the paper-specific kyotobench builds on.
//
// Usage:
//
//	kyotosim -scenario scenario.json
//	kyotosim -example | kyotosim -scenario -
//
// Scenario schema (JSON):
//
//	{
//	  "machine":   "table1" | "r420",
//	  "scheduler": "credit" | "cfs" | "pisces",
//	  "kyoto":     true,
//	  "monitor":   "counters" | "shadow",
//	  "seed":      1,
//	  "warmup":    12,
//	  "ticks":     60,
//	  "vms": [
//	    {"name": "web", "app": "gcc", "pins": [0], "llc_cap": 250},
//	    {"name": "batch", "app": "lbm", "pins": [1], "llc_cap": 250,
//	     "weight": 256, "cap_percent": 0, "home_node": 0}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"kyoto"
)

// scenario is the JSON schema.
type scenario struct {
	Machine   string   `json:"machine"`
	Scheduler string   `json:"scheduler"`
	Kyoto     bool     `json:"kyoto"`
	Monitor   string   `json:"monitor"`
	Seed      uint64   `json:"seed"`
	Warmup    int      `json:"warmup"`
	Ticks     int      `json:"ticks"`
	VMs       []vmSpec `json:"vms"`
}

type vmSpec struct {
	Name       string  `json:"name"`
	App        string  `json:"app"`
	Pins       []int   `json:"pins"`
	LLCCap     float64 `json:"llc_cap"`
	Weight     int64   `json:"weight"`
	CapPercent int     `json:"cap_percent"`
	HomeNode   int     `json:"home_node"`
	VCPUs      int     `json:"vcpus"`
}

const exampleScenario = `{
  "machine": "table1",
  "scheduler": "credit",
  "kyoto": true,
  "seed": 1,
  "warmup": 12,
  "ticks": 60,
  "vms": [
    {"name": "web", "app": "gcc", "pins": [0], "llc_cap": 250},
    {"name": "batch", "app": "lbm", "pins": [1], "llc_cap": 250}
  ]
}`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "kyotosim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kyotosim", flag.ContinueOnError)
	var (
		path    = fs.String("scenario", "", "scenario JSON file ('-' for stdin)")
		example = fs.Bool("example", false, "print an example scenario and exit")
		apps    = fs.Bool("apps", false, "list built-in application profiles and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *example {
		fmt.Fprintln(out, exampleScenario)
		return nil
	}
	if *apps {
		for _, n := range kyoto.ProfileNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}
	if *path == "" {
		return fmt.Errorf("missing -scenario (use -example for a template)")
	}

	var raw []byte
	var err error
	if *path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(*path)
	}
	if err != nil {
		return err
	}
	var sc scenario
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return fmt.Errorf("parsing scenario: %w", err)
	}
	return execute(sc, out)
}

func execute(sc scenario, out io.Writer) error {
	cfg := kyoto.WorldConfig{Seed: sc.Seed, EnableKyoto: sc.Kyoto}
	switch sc.Machine {
	case "", "table1":
		cfg.Machine = kyoto.TableOneMachine(sc.Seed)
	case "r420":
		cfg.Machine = kyoto.R420Machine(sc.Seed)
	default:
		return fmt.Errorf("unknown machine %q", sc.Machine)
	}
	switch sc.Scheduler {
	case "", "credit":
		cfg.Scheduler = kyoto.CreditScheduler
	case "cfs":
		cfg.Scheduler = kyoto.CFSScheduler
	case "pisces":
		cfg.Scheduler = kyoto.PiscesScheduler
	default:
		return fmt.Errorf("unknown scheduler %q", sc.Scheduler)
	}
	switch sc.Monitor {
	case "", "counters":
		cfg.Monitor = kyoto.MonitorCounters
	case "shadow":
		cfg.Monitor = kyoto.MonitorShadowSim
	default:
		return fmt.Errorf("unknown monitor %q", sc.Monitor)
	}

	w, err := kyoto.NewWorld(cfg)
	if err != nil {
		return err
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario has no VMs")
	}
	vms := make([]*kyoto.VM, 0, len(sc.VMs))
	for _, s := range sc.VMs {
		v, err := w.AddVM(kyoto.VMSpec{
			Name: s.Name, App: s.App, Pins: s.Pins, LLCCap: s.LLCCap,
			Weight: s.Weight, CapPercent: s.CapPercent,
			HomeNode: s.HomeNode, VCPUs: s.VCPUs,
		})
		if err != nil {
			return err
		}
		vms = append(vms, v)
	}

	warmup := sc.Warmup
	if warmup == 0 {
		warmup = 12
	}
	ticks := sc.Ticks
	if ticks == 0 {
		ticks = 60
	}
	w.RunTicks(warmup)
	before := make([]kyoto.Counters, len(vms))
	for i, v := range vms {
		before[i] = v.Counters()
	}
	w.RunTicks(ticks)

	fmt.Fprintf(out, "machine:\n%s\n", w.MachineTable())
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vm\tapp\tIPC\tMPKI\teq1 (misses/ms)\tCPU ms\tpunishments")
	for i, v := range vms {
		d := v.Counters().Delta(before[i])
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.2f\t%.1f\t%.1f\t%d\n",
			v.Name, v.App, d.IPC(), d.MissesPerKiloInstr(),
			kyoto.Equation1Value(d), float64(d.WallCycles())/100_000,
			v.Punishments)
	}
	return tw.Flush()
}
