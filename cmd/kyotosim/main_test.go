package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExampleFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-example"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"vms"`) {
		t.Fatalf("example output: %s", out.String())
	}
}

func TestAppsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-apps"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gcc", "lbm", "blockie"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("apps listing missing %s", want)
		}
	}
}

func TestMissingScenario(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("missing -scenario must fail")
	}
}

func TestScenarioExecution(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(exampleScenario), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"web", "batch", "punishments", "eq1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestScenarioValidation(t *testing.T) {
	write := func(body string) string {
		path := filepath.Join(t.TempDir(), "s.json")
		if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"bogus": 1, "vms": [{"name":"a","app":"gcc"}]}`,
		"unknown machine": `{"machine": "cray", "vms": [{"name":"a","app":"gcc"}]}`,
		"unknown sched":   `{"scheduler": "fifo", "vms": [{"name":"a","app":"gcc"}]}`,
		"unknown monitor": `{"monitor": "magic", "vms": [{"name":"a","app":"gcc"}]}`,
		"no vms":          `{"ticks": 5}`,
		"unknown app":     `{"vms": [{"name":"a","app":"doom"}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if err := run([]string{"-scenario", write(body)}, &strings.Builder{}); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestR420CFSScenario(t *testing.T) {
	body := `{
	  "machine": "r420", "scheduler": "cfs", "kyoto": true,
	  "monitor": "shadow", "ticks": 12, "warmup": 3,
	  "vms": [{"name": "a", "app": "povray"}, {"name": "b", "app": "hmmer"}]
	}`
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path}, &out); err != nil {
		t.Fatal(err)
	}
}

func TestFleetModeReport(t *testing.T) {
	body := `{
	  "kyoto": true, "ticks": 12, "warmup": 3,
	  "vms": [
	    {"name": "web", "app": "gcc", "llc_cap": 250},
	    {"name": "batch", "app": "lbm", "llc_cap": 250}
	  ]
	}`
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path, "-hosts", "2", "-placer", "spread"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fleet: 2 hosts", "placer spread", "host0/web", "host1/batch"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fleet report missing %q:\n%s", want, s)
		}
	}
}

func TestFleetModeAdmissionRejects(t *testing.T) {
	body := `{
	  "kyoto": true, "ticks": 6, "warmup": 2,
	  "vms": [
	    {"name": "a", "app": "lbm", "llc_cap": 1000},
	    {"name": "b", "app": "gcc", "llc_cap": 1000},
	    {"name": "late", "app": "mcf", "llc_cap": 100},
	    {"name": "nopermit", "app": "bzip"}
	  ]
	}`
	path := filepath.Join(t.TempDir(), "s.json")
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-scenario", path, "-hosts", "2", "-placer", "kyoto"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "host0/a") || !strings.Contains(s, "host1/b") {
		t.Fatalf("admitted VMs missing:\n%s", s)
	}
	if !strings.Contains(s, "late") || !strings.Contains(s, "oversubscribes") {
		t.Fatalf("permit rejection not reported:\n%s", s)
	}
	if !strings.Contains(s, "books no llc_cap") {
		t.Fatalf("missing-permit rejection not reported:\n%s", s)
	}
}

func TestFleetModeFlagValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	body := `{"vms": [{"name":"a","app":"gcc"}]}`
	if err := os.WriteFile(path, []byte(body), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-hosts", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("hosts 0 must fail")
	}
	if err := run([]string{"-scenario", path, "-hosts", "2", "-placer", "magic"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown placer must fail")
	}
}

// TestTraceModeComparisonTable is the acceptance lock for -trace: the
// committed example trace replayed through all three placers must print
// the rejection-rate / p99 comparison table.
func TestTraceModeComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed example trace on three 4-host fleets")
	}
	var out strings.Builder
	trace := filepath.Join("..", "..", "internal", "arrivals", "testdata", "example.json")
	if err := run([]string{"-trace", trace, "-hosts", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"22 events", "Trace sweep", "first-fit", "spread", "kyoto",
		"rej rate", "p99 norm", "cpu util",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace report missing %q:\n%s", want, s)
		}
	}
}

func TestChurnModeSynthesizesAndWritesTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace on three fleets")
	}
	outFile := filepath.Join(t.TempDir(), "churn.json")
	var out strings.Builder
	if err := run([]string{"-churn", "8", "-hosts", "2", "-seed", "3", "-trace-out", outFile}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "synthetic churn: 8 VMs") ||
		!strings.Contains(out.String(), "Trace sweep") {
		t.Fatalf("churn report wrong:\n%s", out.String())
	}
	// The written trace must replay to the identical table (same seed).
	var replayOut strings.Builder
	if err := run([]string{"-trace", outFile, "-hosts", "2", "-seed", "3"}, &replayOut); err != nil {
		t.Fatal(err)
	}
	tableOf := func(s string) string {
		i := strings.Index(s, "== Trace sweep")
		if i < 0 {
			t.Fatalf("no table in output:\n%s", s)
		}
		return s[i:]
	}
	if tableOf(out.String()) != tableOf(replayOut.String()) {
		t.Fatalf("write-then-replay diverged:\n%s\nvs\n%s", out.String(), replayOut.String())
	}
}

func TestTraceModeFlagValidation(t *testing.T) {
	if err := run([]string{"-trace", "x.json", "-churn", "5"}, &strings.Builder{}); err == nil {
		t.Fatal("-trace with -churn must fail")
	}
	if err := run([]string{"-trace", "missing.json"}, &strings.Builder{}); err == nil {
		t.Fatal("missing trace file must fail")
	}
	if err := run([]string{"-churn", "5", "-hosts", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("hosts 0 must fail in trace mode")
	}
}

func TestTraceModeRejectsForeignFlags(t *testing.T) {
	trace := filepath.Join("..", "..", "internal", "arrivals", "testdata", "example.csv")
	for name, args := range map[string][]string{
		"scenario":  {"-trace", trace, "-scenario", "s.json"},
		"placer":    {"-trace", trace, "-placer", "kyoto"},
		"trace-out": {"-trace", trace, "-trace-out", "o.json"},
		"life":      {"-trace", trace, "-churn-life", "10"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("%s: conflicting flag must be rejected, not silently ignored", name)
		}
	}
}

func TestScenarioModeRejectsTraceFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"seed":      {"-scenario", "s.json", "-seed", "9"},
		"trace-out": {"-scenario", "s.json", "-trace-out", "o.json"},
		"life":      {"-scenario", "s.json", "-churn-life", "10"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("%s: trace-mode flag must be rejected in scenario mode", name)
		}
	}
}

func TestMigrateModeComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace on six fleets")
	}
	var out strings.Builder
	if err := run([]string{"-churn", "10", "-hosts", "3", "-migrate", "reactive"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Migration sweep", "pending=fifo", "first-fit", "spread", "kyoto",
		"migrate", "reactive", "rej rate", "wait p50", "wait p95", "wait p99",
		"migs", "p99 norm",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("migration report missing %q:\n%s", want, s)
		}
	}
	// {none, reactive} x {3 placers} = 6 data rows.
	if rows := strings.Count(s, "first-fit ") + strings.Count(s, "spread ") + strings.Count(s, "kyoto "); rows < 6 {
		t.Fatalf("expected 6 sweep rows, table:\n%s", s)
	}
	// The same invocation reproduces the identical report (determinism
	// through the parallel sweep runner).
	var again strings.Builder
	if err := run([]string{"-churn", "10", "-hosts", "3", "-migrate", "reactive"}, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Fatalf("migration sweep not reproducible:\n%s\nvs\n%s", out.String(), again.String())
	}
}

func TestMigrateModePendingOnlyAndTopo(t *testing.T) {
	if testing.Short() {
		t.Skip("replays synthetic traces on several fleets")
	}
	// -pending alone engages the sweep with the no-migration arm only.
	var out strings.Builder
	if err := run([]string{"-churn", "8", "-hosts", "2", "-pending", "deadline", "-pending-deadline", "15"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pending=deadline") || strings.Contains(out.String(), "reactive") {
		t.Fatalf("pending-only sweep wrong:\n%s", out.String())
	}
	// -migrate topo includes the topology arm.
	var topo strings.Builder
	if err := run([]string{"-churn", "8", "-hosts", "2", "-migrate", "topo"}, &topo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(topo.String(), "topo") {
		t.Fatalf("topo sweep missing its arm:\n%s", topo.String())
	}
}

func TestShardModeFlagValidation(t *testing.T) {
	if err := run([]string{"-scenario", "s.json", "-shard", "0/2"}, &strings.Builder{}); err == nil {
		t.Fatal("-shard outside -trace/-churn mode must fail")
	}
	if err := run([]string{"-churn", "5", "-shard", "0/2", "-merge", "x.json"}, &strings.Builder{}); err == nil {
		t.Fatal("-shard with -merge must fail")
	}
	if err := run([]string{"-churn", "5", "-shard-out", "x.json"}, &strings.Builder{}); err == nil {
		t.Fatal("-shard-out without -shard must fail")
	}
	if err := run([]string{"-churn", "5", "-shard", "9"}, &strings.Builder{}); err == nil {
		t.Fatal("malformed -shard spec must fail")
	}
	if err := run([]string{"-churn", "5", "-shard", "0/2", "-trace-out", "t.json"}, &strings.Builder{}); err == nil {
		t.Fatal("-trace-out with -shard must fail (shards would race on the file)")
	}
	if err := run([]string{"-churn", "5", "-merge", "no-such-*.json"}, &strings.Builder{}); err == nil {
		t.Fatal("-merge with no matching envelopes must fail")
	}
}

func TestShardMergeReproducesSerialTraceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace on three fleets twice")
	}
	dir := t.TempDir()
	churnArgs := []string{"-churn", "8", "-hosts", "2", "-seed", "11"}
	for _, spec := range []string{"0/2", "1/2"} {
		args := append(append([]string{}, churnArgs...),
			"-shard", spec, "-shard-out", filepath.Join(dir, "shard-"+spec[:1]+".json"))
		var envOut strings.Builder
		if err := run(args, &envOut); err != nil {
			t.Fatal(err)
		}
	}
	var serial, merged strings.Builder
	if err := run(churnArgs, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, churnArgs...), "-merge", filepath.Join(dir, "shard-*.json")), &merged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != merged.String() {
		t.Fatalf("merged output differs from serial:\n--- serial\n%s\n--- merged\n%s", serial.String(), merged.String())
	}
	if !strings.Contains(merged.String(), "Trace sweep") {
		t.Fatalf("merged output is not the sweep table:\n%s", merged.String())
	}
	// Merging with mismatched flags (a different fleet size, which does
	// not even change the job keys) must fail loudly via the envelope's
	// configuration digest, not silently print a table for a fleet that
	// never ran.
	bad := []string{"-churn", "8", "-hosts", "3", "-seed", "11", "-merge", filepath.Join(dir, "shard-*.json")}
	var sink strings.Builder
	if err := run(bad, &sink); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched merge flags accepted: %v", err)
	}
}

func TestSeedsFlagValidation(t *testing.T) {
	if err := run([]string{"-churn", "5", "-seeds", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("explicit -seeds 0 must fail, not silently run once")
	}
	if err := run([]string{"-churn", "5", "-seeds", "-3"}, &strings.Builder{}); err == nil {
		t.Fatal("negative -seeds must fail")
	}
	if err := run([]string{"-scenario", "s.json", "-seeds", "4"}, &strings.Builder{}); err == nil {
		t.Fatal("-seeds outside -trace/-churn mode must fail")
	}
}

// TestSeedsModeStatisticsTable is the acceptance lock for -seeds: the
// churn sweep replicated across seeds must print the per-metric
// statistics table instead of the single-seed comparison.
func TestSeedsModeStatisticsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace under several seeds")
	}
	var out strings.Builder
	if err := run([]string{"-churn", "8", "-hosts", "2", "-seeds", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Seed sweep", "3 seeds", "mean ± 95% CI", "bootstrap",
		"first-fit", "spread", "kyoto", "p99_norm",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("seed sweep report missing %q:\n%s", want, s)
		}
	}
	// The migration sweep gains the size-class tail columns.
	var mig strings.Builder
	if err := run([]string{"-churn", "8", "-hosts", "2", "-migrate", "reactive", "-pending", "sjf", "-seeds", "2"}, &mig); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Seed sweep", "2 seeds", "wait_p99_small", "wait_p99_large", "first-fit/reactive"} {
		if !strings.Contains(mig.String(), want) {
			t.Fatalf("migration seed sweep missing %q:\n%s", want, mig.String())
		}
	}
}

// TestSeedsShardMergeReproducesSerial is the acceptance criterion for
// -seeds composing with -shard/-merge: the merged statistics table must
// be byte-identical to the serial -seeds run.
func TestSeedsShardMergeReproducesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace under four seeds twice")
	}
	dir := t.TempDir()
	baseArgs := []string{"-churn", "8", "-hosts", "2", "-seed", "11", "-seeds", "4"}
	for _, spec := range []string{"0/4", "1/4", "2/4", "3/4"} {
		args := append(append([]string{}, baseArgs...),
			"-shard", spec, "-shard-out", filepath.Join(dir, "shard-"+spec[:1]+".json"))
		if err := run(args, &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
	}
	var serial, merged strings.Builder
	if err := run(baseArgs, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, baseArgs...), "-merge", filepath.Join(dir, "shard-*.json")), &merged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != merged.String() {
		t.Fatalf("merged seed sweep differs from serial:\n--- serial\n%s\n--- merged\n%s", serial.String(), merged.String())
	}
	if !strings.Contains(merged.String(), "Seed sweep") {
		t.Fatalf("merged output is not the statistics table:\n%s", merged.String())
	}
	// A different seed count plans a different sweep: merging the four
	// envelopes under -seeds 5 must fail via the configuration digest.
	bad := []string{"-churn", "8", "-hosts", "2", "-seed", "11", "-seeds", "5", "-merge", filepath.Join(dir, "shard-*.json")}
	if err := run(bad, &strings.Builder{}); err == nil {
		t.Fatal("envelopes from a different -seeds count merged silently")
	}
}

func TestMigrateModeFlagValidation(t *testing.T) {
	if err := run([]string{"-churn", "5", "-migrate", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bogus -migrate value must fail")
	}
	if err := run([]string{"-churn", "5", "-pending", "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bogus -pending value must fail")
	}
	if err := run([]string{"-churn", "5", "-migrate", "reactive", "-big-llc", "3"}, &strings.Builder{}); err == nil {
		t.Fatal("non-power-of-two -big-llc must fail")
	}
	if err := run([]string{"-churn", "5", "-migrate-every", "6"}, &strings.Builder{}); err == nil {
		t.Fatal("-migrate-every without -migrate/-pending must fail")
	}
	if err := run([]string{"-churn", "5", "-big-llc", "4"}, &strings.Builder{}); err == nil {
		t.Fatal("-big-llc without -migrate/-pending must fail")
	}
	if err := run([]string{"-scenario", "s.json", "-migrate", "reactive"}, &strings.Builder{}); err == nil {
		t.Fatal("-migrate outside -trace/-churn mode must fail")
	}
	if err := run([]string{"-scenario", "s.json", "-pending", "fifo"}, &strings.Builder{}); err == nil {
		t.Fatal("-pending outside -trace/-churn mode must fail")
	}
}

// TestSignatureFlagValidation pins the clean-error contract for the
// change-detection arm's knobs: out-of-range detector values fail before
// any replay runs, and detector flags without a signature arm in the
// sweep are rejected rather than silently dropped.
func TestSignatureFlagValidation(t *testing.T) {
	for name, args := range map[string][]string{
		"alpha > 1":          {"-churn", "5", "-migrate", "signature", "-detect-alpha", "2"},
		"negative alpha":     {"-churn", "5", "-migrate", "signature", "-detect-alpha", "-0.5"},
		"negative drift":     {"-churn", "5", "-migrate", "signature", "-detect-drift", "-1"},
		"negative threshold": {"-churn", "5", "-migrate", "signature", "-detect-threshold", "-2"},
		"negative warmup":    {"-churn", "5", "-migrate", "signature", "-detect-warmup", "-1"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("%s: invalid detector knob must fail", name)
		}
	}
	if err := run([]string{"-churn", "5", "-migrate", "reactive", "-detect-drift", "0.5"}, &strings.Builder{}); err == nil {
		t.Fatal("-detect-drift without a signature arm must be rejected, not silently ignored")
	}
	if err := run([]string{"-churn", "5", "-detect-alpha", "0.5"}, &strings.Builder{}); err == nil {
		t.Fatal("-detect-alpha without -migrate must fail")
	}
	if err := run([]string{"-scenario", "s.json", "-detect-threshold", "3"}, &strings.Builder{}); err == nil {
		t.Fatal("-detect-threshold outside -trace/-churn mode must fail")
	}
}

// TestSignatureSweepComposition is the acceptance lock for -migrate
// signature: the arm composes with -fidelity analytic, -seeds and
// -shard/-merge, the merged statistics table is byte-identical to the
// serial run, and the detector knobs enter the sweep's configuration
// digest (envelopes from differently tuned detectors refuse to merge).
func TestSignatureSweepComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a synthetic trace under several seeds twice")
	}
	// Single-seed run first: the table must carry the signature arm.
	single := []string{"-churn", "10", "-hosts", "3", "-seed", "7", "-migrate", "signature",
		"-fidelity", "analytic", "-detect-alpha", "0.2", "-detect-drift", "0.1",
		"-detect-threshold", "1", "-detect-warmup", "2"}
	var out strings.Builder
	if err := run(single, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "signature") || !strings.Contains(out.String(), "Migration sweep") {
		t.Fatalf("signature sweep table wrong:\n%s", out.String())
	}

	dir := t.TempDir()
	base := append(append([]string{}, single...), "-seeds", "3")
	for _, spec := range []string{"0/3", "1/3", "2/3"} {
		args := append(append([]string{}, base...),
			"-shard", spec, "-shard-out", filepath.Join(dir, "shard-"+spec[:1]+".json"))
		if err := run(args, &strings.Builder{}); err != nil {
			t.Fatal(err)
		}
	}
	var serial, merged strings.Builder
	if err := run(base, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string{}, base...), "-merge", filepath.Join(dir, "shard-*.json")), &merged); err != nil {
		t.Fatal(err)
	}
	if serial.String() != merged.String() {
		t.Fatalf("merged signature seed sweep differs from serial:\n--- serial\n%s\n--- merged\n%s",
			serial.String(), merged.String())
	}
	if !strings.Contains(merged.String(), "Seed sweep") || !strings.Contains(merged.String(), "signature") {
		t.Fatalf("merged output is not the signature statistics table:\n%s", merged.String())
	}
	// A different detector tuning plans a different sweep: the envelopes
	// must refuse to merge via the configuration digest rather than print
	// a table for detectors that never ran.
	bad := append(append([]string{}, base...), "-merge", filepath.Join(dir, "shard-*.json"))
	for i, a := range bad {
		if a == "-detect-threshold" {
			bad[i+1] = "4"
		}
	}
	if err := run(bad, &strings.Builder{}); err == nil {
		t.Fatal("envelopes from a differently tuned detector merged silently")
	}
}
