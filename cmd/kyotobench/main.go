// Command kyotobench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	kyotobench -run all
//	kyotobench -run fig4,fig5 -seed 7
//	kyotobench -list
//
// Each experiment prints an ASCII table whose rows correspond to the
// paper's bars/series; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// The sweep-shaped experiments (fig4, fig4matrix, ablations — see
// -list-shardable) can be fanned out across processes: -shard k/n runs
// the k-th of n shards of one experiment's job plan and writes a JSON
// shard envelope, and -merge folds the envelopes of all n shards back
// into the experiment's tables, bit-identically to the unsharded run.
// The merge invocation must repeat the shard runs' flags (-run, -seed):
//
//	kyotobench -run fig4 -shard 0/2 -shard-out fig4-0.json
//	kyotobench -run fig4 -shard 1/2 -shard-out fig4-1.json
//	kyotobench -run fig4 -merge 'fig4-*.json'
//
// scripts/sweep_shards.sh automates that fan-out over local processes;
// the same envelopes move across machines with any file transport.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"kyoto/internal/experiments"
	"kyoto/internal/profiling"
	"kyoto/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "kyotobench: %v\n", err)
		os.Exit(1)
	}
}

// experimentFunc runs one experiment and returns its rendered tables.
type experimentFunc func(seed uint64) ([]experiments.Table, error)

// registry maps experiment ids to runners. Keep ids in sync with
// DESIGN.md's per-experiment index.
func registry() map[string]experimentFunc {
	return map[string]experimentFunc{
		"table1": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table1()}, nil
		},
		"table2": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table2()}, nil
		},
		"fig4": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig4(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig4matrix": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.Fig4Matrix(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"fig1": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig1(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig2": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig2(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig3": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig3(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig5": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig5(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig6": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig6(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig8": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig8(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig9": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig9(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig10": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig10(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig11": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig11(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig12": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig12(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"ablations": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.AblationTable(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"ks4linux": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.KS4Linux(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
	}
}

// shardableSweep pairs a sweep with the renderer of its merged result.
type shardableSweep struct {
	s      sweep.Sweep
	tables func() []experiments.Table
}

// shardableSweeps builds the sweep-shaped experiments by id — the ones
// -shard/-merge can distribute. Each call returns fresh sweeps, so shard
// and merge processes plan identical job lists from flags alone.
func shardableSweeps(seed uint64) map[string]shardableSweep {
	fig4 := experiments.NewFig4Sweeper(seed)
	matrix := experiments.NewFig4MatrixSweeper(seed)
	abl := experiments.NewAblationSweeper(seed)
	return map[string]shardableSweep{
		"fig4": {fig4, func() []experiments.Table {
			return []experiments.Table{fig4.Result().Table()}
		}},
		"fig4matrix": {matrix, func() []experiments.Table {
			return []experiments.Table{*matrix.Result()}
		}},
		"ablations": {abl, func() []experiments.Table {
			return []experiments.Table{*abl.Result()}
		}},
	}
}

// shardableIDs lists the -shard/-merge capable experiment ids, sorted.
func shardableIDs() []string {
	ids := make([]string, 0, 4)
	for id := range shardableSweeps(1) {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("kyotobench", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		workers    = fs.Int("workers", 0, "experiment-level parallelism (0 = GOMAXPROCS, 1 = serial); with -shard, caps job parallelism within the shard")
		shardSpec  = fs.String("shard", "", "run one shard (k/n) of a single shardable experiment's job plan and write its envelope")
		shardOut   = fs.String("shard-out", "-", "shard envelope output path ('-' = stdout)")
		mergeGlobs = fs.String("merge", "", "comma-separated shard envelope files/globs to merge into the experiment's tables")
		listShard  = fs.Bool("list-shardable", false, "list experiment ids that support -shard/-merge and exit")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listShard {
		for _, id := range shardableIDs() {
			fmt.Println(id)
		}
		return nil
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer profiling.StopInto(stopProf, &err)
	if *shardSpec != "" || *mergeGlobs != "" {
		return runSharded(*runList, *seed, *workers, *shardSpec, *shardOut, *mergeGlobs, os.Stdout)
	}
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}

	selected := ids
	if *runList != "all" {
		selected = strings.Split(*runList, ",")
	}
	for i, id := range selected {
		selected[i] = strings.TrimSpace(id)
		if _, ok := reg[selected[i]]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", selected[i])
		}
	}

	// Experiments are independent: fan them out across workers (each one
	// also fans its own scenarios out) and print in selection order.
	type outcome struct {
		tables  []experiments.Table
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(selected))
	err = experiments.ForEach(len(selected), *workers, func(i int) error {
		start := time.Now()
		tables, err := reg[selected[i]](*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", selected[i], err)
		}
		outcomes[i] = outcome{tables: tables, elapsed: time.Since(start)}
		return nil
	})
	if err != nil {
		return err
	}
	for i, id := range selected {
		for _, t := range outcomes[i].tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", id, outcomes[i].elapsed.Round(time.Millisecond))
	}
	return nil
}

// runSharded handles the -shard / -merge modes: exactly one shardable
// experiment, either executing one shard of its job plan or folding the
// shard envelopes into its tables.
func runSharded(runList string, seed uint64, workers int, shardSpec, shardOut, mergeGlobs string, out io.Writer) error {
	if shardSpec != "" && mergeGlobs != "" {
		return fmt.Errorf("-shard and -merge are mutually exclusive (run shards first, merge after)")
	}
	ids := strings.Split(runList, ",")
	if len(ids) != 1 || runList == "all" {
		return fmt.Errorf("-shard/-merge need exactly one experiment in -run (shardable: %s)", strings.Join(shardableIDs(), ", "))
	}
	id := strings.TrimSpace(ids[0])
	entry, ok := shardableSweeps(seed)[id]
	if !ok {
		return fmt.Errorf("experiment %q is not shardable (shardable: %s)", id, strings.Join(shardableIDs(), ", "))
	}
	if shardSpec != "" {
		k, n, err := sweep.ParseShardSpec(shardSpec)
		if err != nil {
			return err
		}
		env, err := sweep.Engine{Workers: workers}.RunShard(entry.s, k, n)
		if err != nil {
			return err
		}
		return env.WriteFile(shardOut, out)
	}
	envs, err := sweep.ReadEnvelopes(strings.Split(mergeGlobs, ","))
	if err != nil {
		return err
	}
	if err := sweep.Merge(entry.s, envs); err != nil {
		return err
	}
	for _, t := range entry.tables() {
		fmt.Fprintln(out, t.String())
	}
	fp, err := sweep.MergedFingerprint(envs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "[%s merged from %d shard envelopes, fingerprint %s]\n\n", id, len(envs), fp)
	return nil
}
