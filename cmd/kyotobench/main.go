// Command kyotobench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	kyotobench -run all
//	kyotobench -run fig4,fig5 -seed 7
//	kyotobench -list
//
// Each experiment prints an ASCII table whose rows correspond to the
// paper's bars/series; EXPERIMENTS.md records the paper-vs-measured
// comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"kyoto/internal/experiments"
	"kyoto/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "kyotobench: %v\n", err)
		os.Exit(1)
	}
}

// experimentFunc runs one experiment and returns its rendered tables.
type experimentFunc func(seed uint64) ([]experiments.Table, error)

// registry maps experiment ids to runners. Keep ids in sync with
// DESIGN.md's per-experiment index.
func registry() map[string]experimentFunc {
	return map[string]experimentFunc{
		"table1": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table1()}, nil
		},
		"table2": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table2()}, nil
		},
		"fig4": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig4(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig4matrix": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.Fig4Matrix(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"fig1": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig1(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig2": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig2(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig3": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig3(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig5": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig5(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig6": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig6(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig8": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig8(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig9": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig9(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig10": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig10(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig11": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig11(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig12": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig12(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"ablations": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.AblationTable(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"ks4linux": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.KS4Linux(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("kyotobench", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		workers    = fs.Int("workers", 0, "experiment-level parallelism (0 = GOMAXPROCS, 1 = serial)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer profiling.StopInto(stopProf, &err)
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}

	selected := ids
	if *runList != "all" {
		selected = strings.Split(*runList, ",")
	}
	for i, id := range selected {
		selected[i] = strings.TrimSpace(id)
		if _, ok := reg[selected[i]]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", selected[i])
		}
	}

	// Experiments are independent: fan them out across workers (each one
	// also fans its own scenarios out) and print in selection order.
	type outcome struct {
		tables  []experiments.Table
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(selected))
	err = experiments.ForEach(len(selected), *workers, func(i int) error {
		start := time.Now()
		tables, err := reg[selected[i]](*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", selected[i], err)
		}
		outcomes[i] = outcome{tables: tables, elapsed: time.Since(start)}
		return nil
	})
	if err != nil {
		return err
	}
	for i, id := range selected {
		for _, t := range outcomes[i].tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", id, outcomes[i].elapsed.Round(time.Millisecond))
	}
	return nil
}
