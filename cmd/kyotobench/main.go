// Command kyotobench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	kyotobench -run all
//	kyotobench -run fig4,fig5 -seed 7
//	kyotobench -list
//
// Each experiment prints an ASCII table whose rows correspond to the
// paper's bars/series; EXPERIMENTS.md records the paper-vs-measured
// comparison.
//
// The sweep-shaped experiments (fig4, fig4matrix, ablations, detection — see
// -list-shardable) can be fanned out across processes: -shard k/n runs
// the k-th of n shards of one experiment's job plan and writes a JSON
// shard envelope, and -merge folds the envelopes of all n shards back
// into the experiment's tables, bit-identically to the unsharded run.
// The merge invocation must repeat the shard runs' flags (-run, -seed):
//
//	kyotobench -run fig4 -shard 0/2 -shard-out fig4-0.json
//	kyotobench -run fig4 -shard 1/2 -shard-out fig4-1.json
//	kyotobench -run fig4 -merge 'fig4-*.json'
//
// scripts/sweep_shards.sh automates that fan-out over local processes;
// the same envelopes move across machines with any file transport.
//
// -seeds N replicates a seedable experiment (fig4, ablations, detection) under N
// consecutive seeds starting at -seed and prints per-metric means,
// percentiles and confidence intervals instead of single numbers. The
// seed sweep is itself a sweep, so -seeds composes with -shard/-merge:
//
//	kyotobench -run fig4 -seeds 32 -shard 0/2 -shard-out fig4-0.json
//	kyotobench -run fig4 -seeds 32 -shard 1/2 -shard-out fig4-1.json
//	kyotobench -run fig4 -seeds 32 -merge 'fig4-*.json'
//
// -fidelity selects the cache-model tier for the fidelity-capable
// experiments (fig4): exact is the default per-access simulation,
// analytic runs the whole sweep on the fast LLC-occupancy model
// (~10-100x less wall clock), and two-tier runs the broad pass analytic
// then re-measures the -confirm-top most aggressive applications exact.
// exact and analytic compose with -shard/-merge/-seeds — the fidelity
// enters the sweep's config digest, so envelopes from mismatched tiers
// refuse to merge:
//
//	kyotobench -run fig4 -fidelity analytic
//	kyotobench -run fig4 -fidelity analytic -shard 0/2 -shard-out fig4-0.json
//	kyotobench -run fig4 -fidelity two-tier -confirm-top 3
//
// The warmstart experiment runs the contention arms cold (each arm
// re-simulates the shared warm-up) and forked from one checkpoint,
// verifies per-arm bit-identity, and reports the measured wall-clock
// speedup; -warmstart-json emits the fork accounting as JSON, which
// scripts/bench_json.sh folds into BENCH_kyoto.json:
//
//	kyotobench -run warmstart
//	kyotobench -warmstart-json - -fidelity analytic
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"kyoto/internal/cache"
	"kyoto/internal/experiments"
	"kyoto/internal/profiling"
	"kyoto/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "kyotobench: %v\n", err)
		os.Exit(1)
	}
}

// experimentFunc runs one experiment and returns its rendered tables.
type experimentFunc func(seed uint64) ([]experiments.Table, error)

// fidelityCapable lists the experiments -fidelity analytic can
// accelerate. The rest either measure cache micro-behaviour the
// analytic tier deliberately does not simulate (ablations partition the
// exact LLC) or are cheap enough that two tiers would be noise.
var fidelityCapable = map[string]bool{"fig4": true, "warmstart": true, "detection": true}

// twoTierCapable lists the experiments -fidelity two-tier applies to —
// the ones whose broad pass ranks arms for exact confirmation.
var twoTierCapable = map[string]bool{"fig4": true}

// registry maps experiment ids to runners. Keep ids in sync with
// DESIGN.md's per-experiment index. lockstep forces the eager fleet
// engine in the replay-driven experiments (detection) — schedule-only,
// results are bit-identical; it exists for baseline timing.
func registry(fid cache.Fidelity, lockstep bool) map[string]experimentFunc {
	return map[string]experimentFunc{
		"table1": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table1()}, nil
		},
		"table2": func(seed uint64) ([]experiments.Table, error) {
			return []experiments.Table{experiments.Table2()}, nil
		},
		"fig4": func(seed uint64) ([]experiments.Table, error) {
			s := experiments.NewFig4SweeperFidelity(seed, fid)
			if err := (sweep.Engine{}).Run(s); err != nil {
				return nil, err
			}
			return []experiments.Table{s.Result().Table()}, nil
		},
		"fig4matrix": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.Fig4Matrix(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"fig1": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig1(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig2": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig2(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig3": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig3(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig5": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig5(seed)
			if err != nil {
				return nil, err
			}
			return r.Tables(), nil
		},
		"fig6": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig6(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig8": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig8(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig9": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig9(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig10": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig10(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig11": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig11(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"fig12": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.Fig12(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"ablations": func(seed uint64) ([]experiments.Table, error) {
			t, err := experiments.AblationTable(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{t}, nil
		},
		"ks4linux": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.KS4Linux(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"crossval": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.CrossValidate(seed)
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"warmstart": func(seed uint64) ([]experiments.Table, error) {
			r, err := experiments.WarmStartSweep(experiments.WarmStartConfig{Seed: seed, Fidelity: fid})
			if err != nil {
				return nil, err
			}
			return []experiments.Table{r.Table()}, nil
		},
		"detection": func(seed uint64) ([]experiments.Table, error) {
			s := experiments.NewDetectionBenchSweeper(seed, fid, lockstep)
			if err := (sweep.Engine{}).Run(s); err != nil {
				return nil, err
			}
			return []experiments.Table{s.Result().Table()}, nil
		},
	}
}

// warmstartJSON is the -warmstart-json report: the warm-start sweep's
// fork accounting in machine-readable form, for scripts/bench_json.sh
// to fold into BENCH_kyoto.json.
type warmstartJSON struct {
	Seed         uint64  `json:"seed"`
	Fidelity     string  `json:"fidelity"`
	Arms         int     `json:"arms"`
	WarmupTicks  int     `json:"warmup_ticks"`
	MeasureTicks int     `json:"measure_ticks"`
	TicksCold    int     `json:"ticks_cold"`
	TicksWarm    int     `json:"ticks_warm"`
	TickSavings  float64 `json:"tick_savings"`
	ColdMS       float64 `json:"cold_ms"`
	WarmMS       float64 `json:"warm_ms"`
	WallSpeedup  float64 `json:"wall_speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

// runWarmstartJSON runs the warm-start sweep and writes the fork
// accounting as JSON to path ('-' = stdout).
func runWarmstartJSON(seed uint64, fid cache.Fidelity, path string, out io.Writer) error {
	r, err := experiments.WarmStartSweep(experiments.WarmStartConfig{Seed: seed, Fidelity: fid})
	if err != nil {
		return err
	}
	rep := warmstartJSON{
		Seed:         seed,
		Fidelity:     fid.String(),
		Arms:         len(r.Warm),
		WarmupTicks:  r.WarmupTicks,
		MeasureTicks: r.MeasureTicks,
		TicksCold:    r.TicksCold,
		TicksWarm:    r.TicksWarm,
		TickSavings:  float64(r.TicksCold) / float64(r.TicksWarm),
		ColdMS:       float64(r.ColdDuration.Microseconds()) / 1000,
		WarmMS:       float64(r.WarmDuration.Microseconds()) / 1000,
		WallSpeedup:  r.Speedup,
		BitIdentical: r.BitIdentical(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := out.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// shardableSweep pairs a sweep with the renderer of its merged result.
type shardableSweep struct {
	s      sweep.Sweep
	tables func() ([]experiments.Table, error)
}

// shardableSweeps builds the sweep-shaped experiments by id — the ones
// -shard/-merge can distribute. Each call returns fresh sweeps, so shard
// and merge processes plan identical job lists from flags alone.
func shardableSweeps(seed uint64, fid cache.Fidelity, lockstep bool) map[string]shardableSweep {
	fig4 := experiments.NewFig4SweeperFidelity(seed, fid)
	matrix := experiments.NewFig4MatrixSweeper(seed)
	abl := experiments.NewAblationSweeper(seed)
	det := experiments.NewDetectionBenchSweeper(seed, fid, lockstep)
	return map[string]shardableSweep{
		"fig4": {fig4, func() ([]experiments.Table, error) {
			return []experiments.Table{fig4.Result().Table()}, nil
		}},
		"fig4matrix": {matrix, func() ([]experiments.Table, error) {
			return []experiments.Table{*matrix.Result()}, nil
		}},
		"ablations": {abl, func() ([]experiments.Table, error) {
			return []experiments.Table{*abl.Result()}, nil
		}},
		"detection": {det, func() ([]experiments.Table, error) {
			return []experiments.Table{det.Result().Table()}, nil
		}},
	}
}

// shardableIDs lists the -shard/-merge capable experiment ids, sorted.
func shardableIDs() []string {
	ids := make([]string, 0, 4)
	for id := range shardableSweeps(1, cache.FidelityExact, false) {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// seedableSweeps builds the experiments -seeds can replicate across
// consecutive seeds — the sweeps with sweep.Seedable adapters.
func seedableSweeps(seed uint64, fid cache.Fidelity, lockstep bool) map[string]sweep.Seedable {
	return map[string]sweep.Seedable{
		"fig4":      experiments.NewFig4SweeperFidelity(seed, fid),
		"ablations": experiments.NewAblationSweeper(seed),
		"detection": experiments.NewDetectionBenchSweeper(seed, fid, lockstep),
	}
}

// seedableIDs lists the -seeds capable experiment ids, sorted.
func seedableIDs() []string {
	ids := make([]string, 0, 2)
	for id := range seedableSweeps(1, cache.FidelityExact, false) {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// seedSweepEntry wraps a seedable experiment in a seed sweep paired
// with the statistics-table renderer, so seed sweeps flow through the
// same run/shard/merge paths as any other sweep.
func seedSweepEntry(id string, seed uint64, seeds int, fid cache.Fidelity, lockstep bool) (shardableSweep, error) {
	proto, ok := seedableSweeps(seed, fid, lockstep)[id]
	if !ok {
		return shardableSweep{}, fmt.Errorf("experiment %q does not support -seeds (seedable: %s)", id, strings.Join(seedableIDs(), ", "))
	}
	ss, err := sweep.NewSeedSweeper(proto, sweep.SeedSweepConfig{Seeds: seeds, BaseSeed: seed})
	if err != nil {
		return shardableSweep{}, err
	}
	return shardableSweep{ss, func() ([]experiments.Table, error) {
		t, err := experiments.SeedSweepTable(ss.Result())
		if err != nil {
			return nil, err
		}
		return []experiments.Table{t}, nil
	}}, nil
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("kyotobench", flag.ContinueOnError)
	var (
		runList    = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed       = fs.Uint64("seed", 1, "simulation seed")
		list       = fs.Bool("list", false, "list experiment ids and exit")
		workers    = fs.Int("workers", 0, "experiment-level parallelism (0 = GOMAXPROCS, 1 = serial); with -shard, caps job parallelism within the shard")
		shardSpec  = fs.String("shard", "", "run one shard (k/n) of a single shardable experiment's job plan and write its envelope")
		shardOut   = fs.String("shard-out", "-", "shard envelope output path ('-' = stdout)")
		mergeGlobs = fs.String("merge", "", "comma-separated shard envelope files/globs to merge into the experiment's tables")
		listShard  = fs.Bool("list-shardable", false, "list experiment ids that support -shard/-merge and exit")
		seeds      = fs.Int("seeds", 0, "statistical mode: replicate a seedable experiment under this many consecutive seeds (starting at -seed) and report per-metric means, percentiles and 95% confidence intervals")
		fidelity   = fs.String("fidelity", "exact", "cache-model tier for fidelity-capable experiments (fig4, warmstart, detection): exact, analytic, or two-tier (fig4 only: broad analytic pass, top attackers confirmed exact)")
		confirmTop = fs.Int("confirm-top", 1, "attackers the two-tier mode re-runs on the exact tier")
		wsJSON     = fs.String("warmstart-json", "", "run the warm-start forking sweep and write its fork accounting as JSON to this file ('-' = stdout) instead of tables")
		lockstep   = fs.Bool("lockstep", false, "run replay-driven experiments (detection) on the eager lockstep fleet engine instead of the lazy event-horizon default (bit-identical results; for baseline timing)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["seeds"] && *seeds < 1 {
		return fmt.Errorf("-seeds must be at least 1, got %d", *seeds)
	}
	twoTier := *fidelity == "two-tier"
	var fid cache.Fidelity
	if !twoTier {
		if fid, err = cache.ParseFidelity(*fidelity); err != nil {
			return err
		}
	}
	if set["confirm-top"] && !twoTier {
		return fmt.Errorf("-confirm-top only applies with -fidelity two-tier")
	}
	if twoTier && *confirmTop < 1 {
		return fmt.Errorf("-confirm-top must be at least 1, got %d", *confirmTop)
	}
	if *listShard {
		for _, id := range shardableIDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *wsJSON != "" {
		if twoTier {
			return fmt.Errorf("-warmstart-json runs on one tier; use -fidelity exact or analytic")
		}
		if *seeds > 0 || *shardSpec != "" || *mergeGlobs != "" {
			return fmt.Errorf("-warmstart-json does not compose with -seeds/-shard/-merge")
		}
		return runWarmstartJSON(*seed, fid, *wsJSON, os.Stdout)
	}
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer profiling.StopInto(stopProf, &err)
	if *shardSpec != "" || *mergeGlobs != "" {
		if twoTier {
			// The exact pass depends on the analytic ranking, so the
			// two-tier mode cannot be planned as independent jobs up
			// front; shard each tier separately instead.
			return fmt.Errorf("-fidelity two-tier does not shard (-shard/-merge); shard each tier separately with -fidelity analytic/exact")
		}
		return runSharded(*runList, *seed, *seeds, *workers, fid, *lockstep, *shardSpec, *shardOut, *mergeGlobs, os.Stdout)
	}
	reg := registry(fid, *lockstep)
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}

	selected := ids
	if *runList != "all" {
		selected = strings.Split(*runList, ",")
	}
	for i, id := range selected {
		selected[i] = strings.TrimSpace(id)
		if _, ok := reg[selected[i]]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", selected[i])
		}
		if twoTier && !twoTierCapable[selected[i]] {
			return fmt.Errorf("experiment %q does not support -fidelity two-tier (two-tier applies to: fig4)", selected[i])
		}
		if !twoTier && fid != cache.FidelityExact && !fidelityCapable[selected[i]] {
			return fmt.Errorf("experiment %q runs on the exact tier only (-fidelity applies to: fig4, warmstart, detection)", selected[i])
		}
	}

	if twoTier {
		if *seeds > 0 {
			return fmt.Errorf("-fidelity two-tier does not compose with -seeds; replicate each tier separately with -fidelity analytic/exact")
		}
		return runTwoTier(selected, *seed, *confirmTop, os.Stdout)
	}
	if *seeds > 0 {
		return runSeedSweeps(selected, *seed, *seeds, *workers, fid, *lockstep, os.Stdout)
	}

	// Experiments are independent: fan them out across workers (each one
	// also fans its own scenarios out) and print in selection order.
	type outcome struct {
		tables  []experiments.Table
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(selected))
	err = experiments.ForEach(len(selected), *workers, func(i int) error {
		start := time.Now()
		tables, err := reg[selected[i]](*seed)
		if err != nil {
			return fmt.Errorf("%s: %w", selected[i], err)
		}
		outcomes[i] = outcome{tables: tables, elapsed: time.Since(start)}
		return nil
	})
	if err != nil {
		return err
	}
	for i, id := range selected {
		for _, t := range outcomes[i].tables {
			fmt.Println(t.String())
		}
		fmt.Printf("[%s completed in %v]\n\n", id, outcomes[i].elapsed.Round(time.Millisecond))
	}
	return nil
}

// runSeedSweeps handles plain -seeds mode: each selected experiment must
// be seedable; its seed sweep runs in-process and prints the statistics
// table.
func runSeedSweeps(ids []string, seed uint64, seeds, workers int, fid cache.Fidelity, lockstep bool, out io.Writer) error {
	for _, id := range ids {
		entry, err := seedSweepEntry(id, seed, seeds, fid, lockstep)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := (sweep.Engine{Workers: workers}).Run(entry.s); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		tables, err := entry.tables()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range tables {
			fmt.Fprintln(out, t.String())
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runTwoTier handles -fidelity two-tier: each selected experiment runs
// its broad pass on the analytic tier and re-runs the top-k leaders on
// the exact tier.
func runTwoTier(ids []string, seed uint64, topK int, out io.Writer) error {
	for _, id := range ids {
		start := time.Now()
		r, err := experiments.TwoTierFig4(seed, topK)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, t := range r.Tables() {
			fmt.Fprintln(out, t.String())
		}
		fmt.Fprintf(out, "[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runSharded handles the -shard / -merge modes: exactly one shardable
// experiment, either executing one shard of its job plan or folding the
// shard envelopes into its tables. With seeds > 0 the experiment is
// wrapped in a seed sweep first, so the shards partition the
// seed-replicated job plan.
func runSharded(runList string, seed uint64, seeds, workers int, fid cache.Fidelity, lockstep bool, shardSpec, shardOut, mergeGlobs string, out io.Writer) error {
	if shardSpec != "" && mergeGlobs != "" {
		return fmt.Errorf("-shard and -merge are mutually exclusive (run shards first, merge after)")
	}
	ids := strings.Split(runList, ",")
	if len(ids) != 1 || runList == "all" {
		return fmt.Errorf("-shard/-merge need exactly one experiment in -run (shardable: %s)", strings.Join(shardableIDs(), ", "))
	}
	id := strings.TrimSpace(ids[0])
	var entry shardableSweep
	if fid != cache.FidelityExact && !fidelityCapable[id] {
		return fmt.Errorf("experiment %q runs on the exact tier only (-fidelity applies to: fig4, warmstart, detection)", id)
	}
	if seeds > 0 {
		var err error
		if entry, err = seedSweepEntry(id, seed, seeds, fid, lockstep); err != nil {
			return err
		}
	} else {
		var ok bool
		if entry, ok = shardableSweeps(seed, fid, lockstep)[id]; !ok {
			return fmt.Errorf("experiment %q is not shardable (shardable: %s)", id, strings.Join(shardableIDs(), ", "))
		}
	}
	if shardSpec != "" {
		k, n, err := sweep.ParseShardSpec(shardSpec)
		if err != nil {
			return err
		}
		env, err := sweep.Engine{Workers: workers}.RunShard(entry.s, k, n)
		if err != nil {
			return err
		}
		return env.WriteFile(shardOut, out)
	}
	envs, err := sweep.ReadEnvelopes(strings.Split(mergeGlobs, ","))
	if err != nil {
		return err
	}
	if err := sweep.Merge(entry.s, envs); err != nil {
		return err
	}
	tables, err := entry.tables()
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(out, t.String())
	}
	fp, err := sweep.MergedFingerprint(envs)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "[%s merged from %d shard envelopes, fingerprint %s]\n\n", id, len(envs), fp)
	return nil
}
