package main

import (
	"sort"
	"testing"
)

func TestRegistryCoversPaperArtefacts(t *testing.T) {
	reg := registry()
	wanted := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"ablations", "ks4linux", "fig4matrix",
	}
	for _, id := range wanted {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExperimentsExecute(t *testing.T) {
	// Only the cheap artefacts; the heavy ones are covered by the
	// experiments package's reproduction-lock tests.
	if err := run([]string{"-run", "table1,table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryIdsSorted(t *testing.T) {
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) < 14 {
		t.Fatalf("registry shrank to %d entries", len(ids))
	}
}
