package main

import (
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"kyoto/internal/cache"
)

func TestRegistryCoversPaperArtefacts(t *testing.T) {
	reg := registry(cache.FidelityExact, false)
	wanted := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"ablations", "ks4linux", "fig4matrix",
	}
	for _, id := range wanted {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExperimentsExecute(t *testing.T) {
	// Only the cheap artefacts; the heavy ones are covered by the
	// experiments package's reproduction-lock tests.
	if err := run([]string{"-run", "table1,table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestShardableIDsAreRegistryMembers(t *testing.T) {
	reg := registry(cache.FidelityExact, false)
	ids := shardableIDs()
	if len(ids) < 3 {
		t.Fatalf("shardable set shrank: %v", ids)
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			t.Errorf("shardable id %q missing from registry", id)
		}
	}
	if err := run([]string{"-list-shardable"}); err != nil {
		t.Fatal(err)
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"shard+merge":          {"-run", "ablations", "-shard", "0/2", "-merge", "x.json"},
		"multiple experiments": {"-run", "fig4,ablations", "-shard", "0/2"},
		"all experiments":      {"-run", "all", "-shard", "0/2"},
		"unshardable":          {"-run", "table1", "-shard", "0/2"},
		"bad spec":             {"-run", "ablations", "-shard", "2/2"},
		"missing shards":       {"-run", "ablations", "-merge", "no-such-file-*.json"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%s: must fail", name)
		}
	}
}

func TestShardMergeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the three ablation studies twice")
	}
	dir := t.TempDir()
	for _, spec := range []string{"0/2", "1/2"} {
		outPath := filepath.Join(dir, "shard-"+spec[:1]+".json")
		if err := run([]string{"-run", "ablations", "-shard", spec, "-shard-out", outPath}); err != nil {
			t.Fatal(err)
		}
		if fi, err := os.Stat(outPath); err != nil || fi.Size() == 0 {
			t.Fatalf("shard %s wrote nothing: %v", spec, err)
		}
	}
	if err := run([]string{"-run", "ablations", "-merge", filepath.Join(dir, "shard-*.json")}); err != nil {
		t.Fatal(err)
	}
	// Merging under the wrong experiment id must be caught by the
	// envelope's sweep name.
	if err := run([]string{"-run", "fig4", "-merge", filepath.Join(dir, "shard-*.json")}); err == nil ||
		!strings.Contains(err.Error(), "belongs to sweep") {
		t.Fatalf("foreign envelopes merged silently: %v", err)
	}
}

func TestSeedsFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"explicit zero":    {"-run", "fig4", "-seeds", "0"},
		"negative":         {"-run", "fig4", "-seeds", "-2"},
		"unseedable":       {"-run", "table1", "-seeds", "2"},
		"all experiments":  {"-run", "all", "-seeds", "2"},
		"unseedable shard": {"-run", "fig4matrix", "-seeds", "2", "-shard", "0/2"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%s: must fail", name)
		}
	}
}

func TestSeedableIDsAreShardable(t *testing.T) {
	shardable := shardableSweeps(1, cache.FidelityExact, false)
	ids := seedableIDs()
	if len(ids) < 2 {
		t.Fatalf("seedable set shrank: %v", ids)
	}
	for _, id := range ids {
		if _, ok := shardable[id]; !ok {
			t.Errorf("seedable id %q is not shardable", id)
		}
	}
}

// TestSeedsShardMergeRoundTrip is the -seeds acceptance lock: a sharded
// seed sweep must merge to the byte-identical statistics table a serial
// -seeds run prints.
func TestSeedsShardMergeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the three ablation studies under two seeds twice")
	}
	dir := t.TempDir()
	base := []string{"-run", "ablations", "-seed", "3", "-seeds", "2"}
	for _, spec := range []string{"0/2", "1/2"} {
		args := append(append([]string{}, base...),
			"-shard", spec, "-shard-out", filepath.Join(dir, "seedshard-"+spec[:1]+".json"))
		if err := run(args); err != nil {
			t.Fatal(err)
		}
	}
	serial, err := captureRun(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Seed sweep: ablations, 2 seeds (base 3)", "mean ± 95% CI", "indicator/eq1", "banking/bank4"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("seed sweep table missing %q:\n%s", want, serial)
		}
	}
	merged, err := captureRun(append(append([]string{}, base...), "-merge", filepath.Join(dir, "seedshard-*.json")))
	if err != nil {
		t.Fatal(err)
	}
	tableOf := func(s string) string {
		i := strings.Index(s, "== Seed sweep")
		j := strings.Index(s, "[ablations")
		if i < 0 || j < i {
			t.Fatalf("no seed sweep table in output:\n%s", s)
		}
		return s[i:j]
	}
	if tableOf(serial) != tableOf(merged) {
		t.Fatalf("merged seed sweep differs from serial:\n--- serial\n%s\n--- merged\n%s", serial, merged)
	}
	// The same envelopes must not merge under a plain (seedless) run of
	// the experiment: the seed sweep is a different sweep.
	if err := run([]string{"-run", "ablations", "-seed", "3", "-merge", filepath.Join(dir, "seedshard-*.json")}); err == nil {
		t.Fatal("seed-sweep envelopes merged into the plain experiment")
	}
}

// captureRun executes run() with stdout captured, since the plain-mode
// experiment paths print through fmt.Println.
func captureRun(args []string) (string, error) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		return "", err
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		return "", err
	}
	return string(out), runErr
}

func TestRegistryIdsSorted(t *testing.T) {
	reg := registry(cache.FidelityExact, false)
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) < 14 {
		t.Fatalf("registry shrank to %d entries", len(ids))
	}
}
