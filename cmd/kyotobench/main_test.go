package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestRegistryCoversPaperArtefacts(t *testing.T) {
	reg := registry()
	wanted := []string{
		"table1", "table2",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig8", "fig9", "fig10", "fig11", "fig12",
		"ablations", "ks4linux", "fig4matrix",
	}
	for _, id := range wanted {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExperimentsExecute(t *testing.T) {
	// Only the cheap artefacts; the heavy ones are covered by the
	// experiments package's reproduction-lock tests.
	if err := run([]string{"-run", "table1,table2"}); err != nil {
		t.Fatal(err)
	}
}

func TestShardableIDsAreRegistryMembers(t *testing.T) {
	reg := registry()
	ids := shardableIDs()
	if len(ids) < 3 {
		t.Fatalf("shardable set shrank: %v", ids)
	}
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			t.Errorf("shardable id %q missing from registry", id)
		}
	}
	if err := run([]string{"-list-shardable"}); err != nil {
		t.Fatal(err)
	}
}

func TestShardFlagValidation(t *testing.T) {
	cases := map[string][]string{
		"shard+merge":          {"-run", "ablations", "-shard", "0/2", "-merge", "x.json"},
		"multiple experiments": {"-run", "fig4,ablations", "-shard", "0/2"},
		"all experiments":      {"-run", "all", "-shard", "0/2"},
		"unshardable":          {"-run", "table1", "-shard", "0/2"},
		"bad spec":             {"-run", "ablations", "-shard", "2/2"},
		"missing shards":       {"-run", "ablations", "-merge", "no-such-file-*.json"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("%s: must fail", name)
		}
	}
}

func TestShardMergeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the three ablation studies twice")
	}
	dir := t.TempDir()
	for _, spec := range []string{"0/2", "1/2"} {
		outPath := filepath.Join(dir, "shard-"+spec[:1]+".json")
		if err := run([]string{"-run", "ablations", "-shard", spec, "-shard-out", outPath}); err != nil {
			t.Fatal(err)
		}
		if fi, err := os.Stat(outPath); err != nil || fi.Size() == 0 {
			t.Fatalf("shard %s wrote nothing: %v", spec, err)
		}
	}
	if err := run([]string{"-run", "ablations", "-merge", filepath.Join(dir, "shard-*.json")}); err != nil {
		t.Fatal(err)
	}
	// Merging under the wrong experiment id must be caught by the
	// envelope's sweep name.
	if err := run([]string{"-run", "fig4", "-merge", filepath.Join(dir, "shard-*.json")}); err == nil ||
		!strings.Contains(err.Error(), "belongs to sweep") {
		t.Fatalf("foreign envelopes merged silently: %v", err)
	}
}

func TestRegistryIdsSorted(t *testing.T) {
	reg := registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) < 14 {
		t.Fatalf("registry shrank to %d entries", len(ids))
	}
}
