// Command llccap is the provider-side permit sizing tool sketched in the
// paper's §5 discussion: it characterizes an application's pollution level
// on the simulated testbed and recommends an llc_cap booking with headroom
// — the way a provider would map instance types to permit tiers.
//
// Usage:
//
//	llccap -app lbm
//	llccap -all -headroom 1.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"kyoto"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "llccap: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("llccap", flag.ContinueOnError)
	var (
		app      = fs.String("app", "", "application profile to characterize")
		all      = fs.Bool("all", false, "characterize every built-in profile")
		headroom = fs.Float64("headroom", 1.2, "multiplier on the measured rate")
		ticks    = fs.Int("ticks", 60, "measurement window in ticks (10 ms each)")
		seed     = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *headroom <= 0 {
		return fmt.Errorf("headroom must be positive")
	}
	var apps []string
	switch {
	case *all:
		apps = kyoto.ProfileNames()
	case *app != "":
		apps = []string{*app}
	default:
		return fmt.Errorf("need -app NAME or -all")
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tclass\tIPC\teq1 (misses/ms)\tLLCM (misses/ms)\trecommended llc_cap")
	for _, name := range apps {
		profile, err := kyoto.LookupProfile(name)
		if err != nil {
			return err
		}
		d, err := characterize(name, *ticks, *seed)
		if err != nil {
			return err
		}
		eq1 := kyoto.Equation1Value(d)
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.1f\t%.1f\t%.0f\n",
			name, profile.Class, d.IPC(), eq1, kyoto.RawLLCMValue(d), eq1**headroom)
	}
	return tw.Flush()
}

// characterize runs the app alone and returns its measurement-window
// counters.
func characterize(app string, ticks int, seed uint64) (kyoto.Counters, error) {
	w, err := kyoto.NewWorld(kyoto.WorldConfig{Seed: seed})
	if err != nil {
		return kyoto.Counters{}, err
	}
	v, err := w.AddVM(kyoto.VMSpec{Name: "solo", App: app, Pins: []int{0}})
	if err != nil {
		return kyoto.Counters{}, err
	}
	w.RunTicks(12) // warmup
	before := v.Counters()
	w.RunTicks(ticks)
	return v.Counters().Delta(before), nil
}
