package main

import (
	"strings"
	"testing"
)

func TestCharacterizeSingleApp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-app", "lbm", "-ticks", "20"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lbm") || !strings.Contains(s, "recommended llc_cap") {
		t.Fatalf("report: %s", s)
	}
}

func TestHeadroomApplied(t *testing.T) {
	read := func(headroom string) string {
		var out strings.Builder
		if err := run([]string{"-app", "lbm", "-ticks", "20", "-headroom", headroom}, &out); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		fields := strings.Fields(lines[len(lines)-1])
		return fields[len(fields)-1]
	}
	if read("1.0") == read("2.0") {
		t.Fatal("headroom had no effect on the recommendation")
	}
}

func TestErrors(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("missing -app must fail")
	}
	if err := run([]string{"-app", "doom"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown app must fail")
	}
	if err := run([]string{"-app", "lbm", "-headroom", "-1"}, &strings.Builder{}); err == nil {
		t.Fatal("negative headroom must fail")
	}
}

func TestAllAppsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizing every profile is slow")
	}
	var out strings.Builder
	if err := run([]string{"-all", "-ticks", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gcc", "milc", "povray"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %s in -all output", want)
		}
	}
}
