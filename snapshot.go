package kyoto

// Checkpointable worlds: Snapshot serializes a World's (or a Cluster's)
// complete simulation state into a versioned, fingerprinted envelope, and
// Resume rebuilds a world from it that continues bit-identically — the
// restored run's counters, fingerprints and punishments match a
// straight-through run of the original, tick for tick. The envelope pins
// the construction configuration with a digest, so resuming under a
// different seed, scheduler, machine or fidelity tier fails with a clear
// error instead of silently diverging. See internal/snapshot.

import (
	"fmt"

	"kyoto/internal/snapshot"
)

// Snapshot serializes the world's complete simulation state — caches (or
// the analytic occupancy model), scheduler accounts, Kyoto ledgers,
// monitor samplers, workload PRNG cursors, id allocators — into a
// self-validating envelope. Call it between RunTicks calls; the world is
// left untouched and keeps running. Worlds using MonitorShadowSim cannot
// be checkpointed (the trace-replay monitor's buffers are not
// serializable).
func Snapshot(w *World) ([]byte, error) {
	if w.shadow {
		return nil, fmt.Errorf("kyoto: worlds using the shadow-sim monitor cannot be checkpointed — use MonitorCounters")
	}
	digest, err := snapshot.ConfigDigest(w.cfg)
	if err != nil {
		return nil, err
	}
	return snapshot.CaptureWorld(w.inner, w.oracle, digest)
}

// Resume rebuilds a world from a Snapshot. The config must be exactly
// the one the snapshotted world was built from (same machine, scheduler,
// Kyoto enforcement, seed and fidelity) — the envelope carries a config
// digest and a mismatch is an error. The resumed world's future is
// bit-identical to the original's: running both N ticks produces
// identical counters everywhere.
func Resume(cfg WorldConfig, data []byte) (*World, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	if w.shadow {
		return nil, fmt.Errorf("kyoto: worlds using the shadow-sim monitor cannot resume checkpoints — use MonitorCounters")
	}
	digest, err := snapshot.ConfigDigest(w.cfg)
	if err != nil {
		return nil, err
	}
	if err := snapshot.RestoreWorld(w.inner, w.oracle, digest, data); err != nil {
		return nil, err
	}
	return w, nil
}

// clusterDigest is what SnapshotCluster digests: the construction config
// minus Workers, which changes only how many goroutines drive the hosts,
// never any result.
type clusterDigest struct {
	Hosts         int
	World         WorldConfig
	Placer        PlacerKind
	HostMemoryMB  int
	HostLLCBudget float64
	HostOverrides map[int]HostOverride
}

// clusterConfigDigest normalizes the same defaults the fleet constructor
// applies, so two configs that build identical fleets digest identically.
func clusterConfigDigest(cfg ClusterConfig) (string, error) {
	wc := cfg.World
	if wc.Seed == 0 {
		wc.Seed = 1
	}
	if wc.Scheduler == 0 {
		wc.Scheduler = CreditScheduler
	}
	return snapshot.ConfigDigest(clusterDigest{
		Hosts:         cfg.Hosts,
		World:         wc,
		Placer:        cfg.Placer,
		HostMemoryMB:  cfg.HostMemoryMB,
		HostLLCBudget: cfg.HostLLCBudget,
		HostOverrides: cfg.HostOverrides,
	})
}

// SnapshotCluster serializes a whole fleet — every host's world and
// monitor plus the placement bookkeeping — into one envelope. Call it
// between RunTicks calls.
func SnapshotCluster(c *Cluster) ([]byte, error) {
	digest, err := clusterConfigDigest(c.cfg)
	if err != nil {
		return nil, err
	}
	return snapshot.CaptureFleet(c.fleet, digest)
}

// ResumeCluster rebuilds a fleet from a SnapshotCluster. The config must
// be exactly the one the snapshotted cluster was built from (Workers may
// differ — concurrency never changes results); the resumed fleet
// continues bit-identically.
func ResumeCluster(cfg ClusterConfig, data []byte) (*Cluster, error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return nil, err
	}
	digest, err := clusterConfigDigest(c.cfg)
	if err != nil {
		return nil, err
	}
	if err := snapshot.RestoreFleet(c.fleet, digest, data); err != nil {
		return nil, err
	}
	return c, nil
}
