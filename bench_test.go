package kyoto

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artefact) and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. DESIGN.md maps artefacts to benches;
// EXPERIMENTS.md records paper-vs-measured values.

import (
	"testing"

	"kyoto/internal/experiments"
)

// BenchmarkTable1Machine renders the experimental machine description.
func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2VMs renders the VM-to-application mapping.
func BenchmarkTable2VMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1Contention runs the §2.2 contention grid and reports the
// worst-case degradations per mode (paper: parallel ~70%, alternative ~13%).
func BenchmarkFig1Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Degradation[experiments.Parallel]["micro-c2-rep"]["micro-c2-dis"], "parallel-c2-%deg")
		b.ReportMetric(r.Degradation[experiments.Alternative]["micro-c2-rep"]["micro-c2-dis"], "alt-c2-%deg")
	}
}

// BenchmarkFig2MissTimeline runs the per-tick LLCM zoom-in and reports the
// loading spike and steady parallel misses.
func BenchmarkFig2MissTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Series["alone"][0], "alone-load-misses")
		b.ReportMetric(r.Series["parallel"][10], "parallel-tick10-misses")
	}
}

// BenchmarkFig3CPULever runs the cap sweep and reports linearity.
func BenchmarkFig3CPULever(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PearsonR["gcc"], "gcc-pearson-r")
		b.ReportMetric(r.PearsonR["omnetpp"], "omnetpp-pearson-r")
		b.ReportMetric(r.PearsonR["soplex"], "soplex-pearson-r")
	}
}

// BenchmarkFig4Indicators runs the full indicator study (10 solo + 90 pair
// runs) and reports the Kendall taus (paper: 0.60 and 0.82).
func BenchmarkFig4Indicators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TauLLCM, "tau-llcm")
		b.ReportMetric(r.TauEq1, "tau-eq1")
	}
}

// BenchmarkFig5Effectiveness runs the enforcement study and reports
// vsen1's normalized performance under KS4Xen vs XCS against vdis1.
func BenchmarkFig5Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormPerf["lbm"], "ks4xen-normperf")
		b.ReportMetric(r.NormPerfXCS["lbm"], "xcs-normperf")
	}
}

// BenchmarkFig6Scalability runs the 1..15-disruptor sweep and reports the
// minimum normalized performance (paper: ~1.0 throughout).
func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		minPerf := 1.0
		for _, p := range r.NormPerf {
			if p < minPerf {
				minPerf = p
			}
		}
		b.ReportMetric(minPerf, "min-normperf")
	}
}

// BenchmarkFig8Pisces runs the co-kernel comparison and reports the
// colocated slowdown under Pisces vs KS4Pisces (paper: ~24% vs ~0%).
func BenchmarkFig8Pisces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.PiscesColocated-r.PiscesAlone)/r.PiscesAlone, "pisces-slowdown-%")
		b.ReportMetric(100*(r.KS4PiscesColocated-r.KS4PiscesAlone)/r.KS4PiscesAlone, "ks4pisces-slowdown-%")
	}
}

// BenchmarkFig9Migration runs the NUMA migration study and reports the
// worst per-app degradation (paper: up to ~12%).
func BenchmarkFig9Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, d := range r.Degradation {
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(worst, "worst-%deg")
	}
}

// BenchmarkFig10SkipHeuristics runs the isolation-skipping study and
// reports the hmmer and bzip estimate pairs (paper: equal within noise).
func BenchmarkFig10SkipHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BzipNotIsolated, "bzip-inplace")
		b.ReportMetric(r.BzipIsolated, "bzip-isolated")
	}
}

// BenchmarkFig11NoDedication runs the estimator-equivalence study and
// reports the ordering agreement of each estimator with the solo truth.
func BenchmarkFig11NoDedication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TauDedicated, "tau-dedicated")
		b.ReportMetric(r.TauInPlace, "tau-inplace")
		b.ReportMetric(r.TauShadow, "tau-shadow")
	}
}

// BenchmarkFig12Overhead runs the tick-length sweep and reports the
// largest absolute overhead of KS4Xen over XCS (paper: near zero).
func BenchmarkFig12Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for j := range r.TickMillis {
			over := 100 * (r.ExecKyoto[j] - r.ExecXCS[j]) / r.ExecXCS[j]
			if over < 0 {
				over = -over
			}
			if over > worst {
				worst = over
			}
		}
		b.ReportMetric(worst, "worst-abs-overhead-%")
	}
}

// BenchmarkKS4AllSystems validates §1's portability claim: the same
// permit enforced through credit, CFS and Pisces schedulers.
func BenchmarkKS4AllSystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.KS4Linux(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormPerf["KS4Xen (credit)"], "ks4xen-normperf")
		b.ReportMetric(r.NormPerf["KS4Linux (cfs)"], "ks4linux-normperf")
		b.ReportMetric(r.NormPerf["KS4Pisces (pisces)"], "ks4pisces-normperf")
	}
}

// --- Ablation benches (extensions beyond the paper; see DESIGN.md §6). ---

// BenchmarkAblationIndicator compares quota enforcement driven by
// Equation 1 vs the raw-LLCM indicator on the Fig 5 scenario.
func BenchmarkAblationIndicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eq1, llcm, err := experiments.AblationIndicator(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(eq1, "eq1-normperf")
		b.ReportMetric(llcm, "llcm-normperf")
	}
}

// BenchmarkAblationPartitioning compares Kyoto against idealized
// UCP-style way partitioning of the LLC.
func BenchmarkAblationPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kyotoPerf, partPerf, err := experiments.AblationPartitioning(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(kyotoPerf, "kyoto-normperf")
		b.ReportMetric(partPerf, "waypart-normperf")
	}
}

// BenchmarkAblationBanking measures the effect of quota banking on a
// bursty polluter's victim.
func BenchmarkAblationBanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		noBank, bank, err := experiments.AblationBanking(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(noBank, "nobank-normperf")
		b.ReportMetric(bank, "bank4-normperf")
	}
}
