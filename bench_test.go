package kyoto

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one Benchmark per artefact) and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. DESIGN.md maps artefacts to benches;
// EXPERIMENTS.md records paper-vs-measured values.

import (
	"fmt"
	"testing"

	"kyoto/internal/experiments"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// BenchmarkTable1Machine renders the experimental machine description.
func BenchmarkTable1Machine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2VMs renders the VM-to-application mapping.
func BenchmarkTable2VMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1Contention runs the §2.2 contention grid and reports the
// worst-case degradations per mode (paper: parallel ~70%, alternative ~13%).
func BenchmarkFig1Contention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Degradation[experiments.Parallel]["micro-c2-rep"]["micro-c2-dis"], "parallel-c2-%deg")
		b.ReportMetric(r.Degradation[experiments.Alternative]["micro-c2-rep"]["micro-c2-dis"], "alt-c2-%deg")
	}
}

// BenchmarkFig2MissTimeline runs the per-tick LLCM zoom-in and reports the
// loading spike and steady parallel misses.
func BenchmarkFig2MissTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Series["alone"][0], "alone-load-misses")
		b.ReportMetric(r.Series["parallel"][10], "parallel-tick10-misses")
	}
}

// BenchmarkFig3CPULever runs the cap sweep and reports linearity.
func BenchmarkFig3CPULever(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PearsonR["gcc"], "gcc-pearson-r")
		b.ReportMetric(r.PearsonR["omnetpp"], "omnetpp-pearson-r")
		b.ReportMetric(r.PearsonR["soplex"], "soplex-pearson-r")
	}
}

// BenchmarkFig4Indicators runs the full indicator study (10 solo + 90 pair
// runs) and reports the Kendall taus (paper: 0.60 and 0.82).
func BenchmarkFig4Indicators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TauLLCM, "tau-llcm")
		b.ReportMetric(r.TauEq1, "tau-eq1")
	}
}

// BenchmarkFig5Effectiveness runs the enforcement study and reports
// vsen1's normalized performance under KS4Xen vs XCS against vdis1.
func BenchmarkFig5Effectiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormPerf["lbm"], "ks4xen-normperf")
		b.ReportMetric(r.NormPerfXCS["lbm"], "xcs-normperf")
	}
}

// BenchmarkFig6Scalability runs the 1..15-disruptor sweep and reports the
// minimum normalized performance (paper: ~1.0 throughout).
func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(1)
		if err != nil {
			b.Fatal(err)
		}
		minPerf := 1.0
		for _, p := range r.NormPerf {
			if p < minPerf {
				minPerf = p
			}
		}
		b.ReportMetric(minPerf, "min-normperf")
	}
}

// BenchmarkFig8Pisces runs the co-kernel comparison and reports the
// colocated slowdown under Pisces vs KS4Pisces (paper: ~24% vs ~0%).
func BenchmarkFig8Pisces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.PiscesColocated-r.PiscesAlone)/r.PiscesAlone, "pisces-slowdown-%")
		b.ReportMetric(100*(r.KS4PiscesColocated-r.KS4PiscesAlone)/r.KS4PiscesAlone, "ks4pisces-slowdown-%")
	}
}

// BenchmarkFig9Migration runs the NUMA migration study and reports the
// worst per-app degradation (paper: up to ~12%).
func BenchmarkFig9Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, d := range r.Degradation {
			if d > worst {
				worst = d
			}
		}
		b.ReportMetric(worst, "worst-%deg")
	}
}

// BenchmarkFig10SkipHeuristics runs the isolation-skipping study and
// reports the hmmer and bzip estimate pairs (paper: equal within noise).
func BenchmarkFig10SkipHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BzipNotIsolated, "bzip-inplace")
		b.ReportMetric(r.BzipIsolated, "bzip-isolated")
	}
}

// BenchmarkFig11NoDedication runs the estimator-equivalence study and
// reports the ordering agreement of each estimator with the solo truth.
func BenchmarkFig11NoDedication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TauDedicated, "tau-dedicated")
		b.ReportMetric(r.TauInPlace, "tau-inplace")
		b.ReportMetric(r.TauShadow, "tau-shadow")
	}
}

// BenchmarkFig12Overhead runs the tick-length sweep and reports the
// largest absolute overhead of KS4Xen over XCS (paper: near zero).
func BenchmarkFig12Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(1)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for j := range r.TickMillis {
			over := 100 * (r.ExecKyoto[j] - r.ExecXCS[j]) / r.ExecXCS[j]
			if over < 0 {
				over = -over
			}
			if over > worst {
				worst = over
			}
		}
		b.ReportMetric(worst, "worst-abs-overhead-%")
	}
}

// BenchmarkKS4AllSystems validates §1's portability claim: the same
// permit enforced through credit, CFS and Pisces schedulers.
func BenchmarkKS4AllSystems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.KS4Linux(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NormPerf["KS4Xen (credit)"], "ks4xen-normperf")
		b.ReportMetric(r.NormPerf["KS4Linux (cfs)"], "ks4linux-normperf")
		b.ReportMetric(r.NormPerf["KS4Pisces (pisces)"], "ks4pisces-normperf")
	}
}

// --- Cluster-scale benches (the fleet layer and the parallel runner). ---

// benchFleet builds a 16-host Kyoto fleet with two VMs per host behind
// the given worker cap.
func benchFleet(b *testing.B, workers int) *Cluster {
	b.Helper()
	c, err := NewCluster(ClusterConfig{
		Hosts: 16,
		World: WorldConfig{Seed: 42, EnableKyoto: true},
		// Two default 64 MB bookings per host: first-fit fills the fleet
		// evenly, so every worker has the same amount of work.
		HostMemoryMB: 128,
		Placer:       PlacerFirstFit,
		Workers:      workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	apps := []string{"gcc", "lbm", "omnetpp", "blockie"}
	for i := 0; i < 2*c.Hosts(); i++ {
		_, err := c.Place(ClusterVMSpec{VMSpec: VMSpec{
			Name:   fmt.Sprintf("vm%d", i),
			App:    apps[i%len(apps)],
			Pins:   []int{i % 2},
			LLCCap: 250,
		}})
		if err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkClusterRun drives a 16-host fleet (32 VMs) serially vs through
// the worker pool; the parallel/serial ratio is the fleet-level speedup
// on the host machine.
func BenchmarkClusterRun(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS workers
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := benchFleet(b, bc.workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.RunTicks(5)
			}
			b.ReportMetric(float64(5*b.N), "model-ticks/host")
		})
	}
}

// BenchmarkRunnerParallel runs an independent-scenario batch (the shape
// of every FigNN regeneration) through the experiment runner serially vs
// fanned out across GOMAXPROCS workers.
func BenchmarkRunnerParallel(b *testing.B) {
	apps := workload.Figure4Apps()
	scenarios := make([]experiments.Scenario, 0, 2*len(apps))
	for i, app := range apps {
		scenarios = append(scenarios,
			experiments.Scenario{
				Seed: uint64(i + 1),
				VMs:  []vm.Spec{{Name: "solo", App: app, Pins: []int{0}}},
			},
			experiments.Scenario{
				Seed: uint64(i + 1),
				VMs: []vm.Spec{
					{Name: "victim", App: app, Pins: []int{0}},
					{Name: "attacker", App: "lbm", Pins: []int{1}},
				},
			})
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS workers
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunAllWorkers(scenarios, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(scenarios)), "scenarios/op")
		})
	}
}

// --- Ablation benches (extensions beyond the paper; see DESIGN.md §6). ---

// BenchmarkAblationIndicator compares quota enforcement driven by
// Equation 1 vs the raw-LLCM indicator on the Fig 5 scenario.
func BenchmarkAblationIndicator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eq1, llcm, err := experiments.AblationIndicator(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(eq1, "eq1-normperf")
		b.ReportMetric(llcm, "llcm-normperf")
	}
}

// BenchmarkAblationPartitioning compares Kyoto against idealized
// UCP-style way partitioning of the LLC.
func BenchmarkAblationPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kyotoPerf, partPerf, err := experiments.AblationPartitioning(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(kyotoPerf, "kyoto-normperf")
		b.ReportMetric(partPerf, "waypart-normperf")
	}
}

// BenchmarkAblationBanking measures the effect of quota banking on a
// bursty polluter's victim.
func BenchmarkAblationBanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		noBank, bank, err := experiments.AblationBanking(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(noBank, "nobank-normperf")
		b.ReportMetric(bank, "bank4-normperf")
	}
}
