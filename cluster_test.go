package kyoto

import (
	"testing"
)

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Hosts: 2, World: WorldConfig{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Hosts() != 2 {
		t.Fatalf("hosts = %d", c.Hosts())
	}
	for i := 0; i < c.Hosts(); i++ {
		if c.Host(i).MachineTable() == "" {
			t.Fatalf("host %d machine table empty", i)
		}
	}
	if _, err := NewCluster(ClusterConfig{Hosts: 0}); err == nil {
		t.Fatal("zero hosts must fail")
	}
	if _, err := NewCluster(ClusterConfig{Hosts: 1, World: WorldConfig{Scheduler: 99}}); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
	if _, err := NewCluster(ClusterConfig{Hosts: 1, World: WorldConfig{Monitor: 99}}); err == nil {
		t.Fatal("unknown monitor must fail")
	}
	if _, err := NewCluster(ClusterConfig{Hosts: 1, Placer: 99}); err == nil {
		t.Fatal("unknown placer must fail")
	}
}

func TestClusterPlaceAndRun(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:  2,
		World:  WorldConfig{Seed: 1, EnableKyoto: true},
		Placer: PlacerKyoto,
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := []ClusterVMSpec{
		{VMSpec: VMSpec{Name: "sen", App: "gcc", LLCCap: 500}},
		{VMSpec: VMSpec{Name: "dis", App: "lbm", LLCCap: 500}},
		{VMSpec: VMSpec{Name: "dis2", App: "blockie", LLCCap: 500}},
		{VMSpec: VMSpec{Name: "sen2", App: "omnetpp", LLCCap: 500}},
	}
	for _, s := range specs {
		if _, err := c.Place(s); err != nil {
			t.Fatalf("placing %s: %v", s.Name, err)
		}
	}
	// Both hosts' permit budgets (1000 each) are now fully booked.
	if _, err := c.Place(ClusterVMSpec{VMSpec: VMSpec{Name: "late", App: "mcf", LLCCap: 100}}); err == nil {
		t.Fatal("admission must reject the fifth permit")
	}
	if got := len(c.Placements()); got != 4 {
		t.Fatalf("placements = %d", got)
	}
	c.RunTicks(30)
	v, host := c.FindVM("sen")
	if v == nil || host < 0 {
		t.Fatal("sen lost")
	}
	if v.Counters().Instructions == 0 {
		t.Fatal("sen made no progress")
	}
	for i := 0; i < c.Hosts(); i++ {
		if c.Host(i).Now() != 30 {
			t.Fatalf("host %d at tick %d", i, c.Host(i).Now())
		}
		if c.Host(i).Kyoto() == nil {
			t.Fatalf("host %d has no ledger", i)
		}
	}
	if v, host := c.FindVM("nope"); v != nil || host != -1 {
		t.Fatal("FindVM must miss cleanly")
	}
}

func TestPlacerKindByName(t *testing.T) {
	want := map[string]PlacerKind{
		"first-fit": PlacerFirstFit,
		"spread":    PlacerSpread,
		"kyoto":     PlacerKyoto,
	}
	names := PlacerNames()
	if len(names) != len(want) {
		t.Fatalf("placer names = %v", names)
	}
	for _, name := range names {
		kind, err := PlacerKindByName(name)
		if err != nil || kind != want[name] {
			t.Fatalf("%s -> %v, %v", name, kind, err)
		}
	}
	if _, err := PlacerKindByName("magic"); err == nil {
		t.Fatal("unknown name must fail")
	}
}

func TestClusterPlacerKindsDiffer(t *testing.T) {
	// The same request stream lands differently under first-fit (pack)
	// and spread (balance) — the cluster-level contrast the paper draws.
	place := func(kind PlacerKind) []int {
		c, err := NewCluster(ClusterConfig{Hosts: 2, World: WorldConfig{Seed: 1}, Placer: kind})
		if err != nil {
			t.Fatal(err)
		}
		var hosts []int
		for _, app := range []string{"lbm", "blockie"} {
			p, err := c.Place(ClusterVMSpec{VMSpec: VMSpec{Name: app, App: app, LLCCap: 250}})
			if err != nil {
				t.Fatal(err)
			}
			hosts = append(hosts, p.HostID)
		}
		return hosts
	}
	ff := place(PlacerFirstFit)
	sp := place(PlacerSpread)
	if ff[0] != 0 || ff[1] != 0 {
		t.Fatalf("first-fit must pack: %v", ff)
	}
	if sp[0] != 0 || sp[1] != 1 {
		t.Fatalf("spread must separate the polluters: %v", sp)
	}
}
