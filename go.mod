module kyoto

go 1.24
