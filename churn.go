package kyoto

// The fleet lifecycle facade: replayable arrival/departure traces,
// synthetic churn, and the sweep that contrasts the three placement
// policies over one trace. See internal/arrivals for the engine and its
// README for the on-disk trace format.

import (
	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/experiments"
)

// Re-exported lifecycle types.
type (
	// TraceEvent is one trace record: submit tick, lifetime, sizing and
	// cache-aggressiveness class of one VM.
	TraceEvent = arrivals.Event
	// Trace is an ordered set of lifecycle events.
	Trace = arrivals.Trace
	// ChurnConfig parameterizes the seeded synthetic churn generator
	// (Poisson-style arrivals, heavy-tailed lifetimes).
	ChurnConfig = arrivals.SynthConfig
	// ClassShare weights one application class in a synthetic mix.
	ClassShare = arrivals.ClassShare
	// ReplayOptions tunes a trace replay.
	ReplayOptions = arrivals.Options
	// ReplayRecord is one VM's outcome: placement (or rejection),
	// residency bounds, and lifetime counters.
	ReplayRecord = arrivals.Record
	// ReplayResult is a whole replay's outcome, with a deterministic
	// Fingerprint.
	ReplayResult = arrivals.Result
	// HostOverride customizes one host of an otherwise uniform fleet
	// (heterogeneous machines, memory or permit budgets).
	HostOverride = cluster.HostOverride
	// TraceSweepConfig parameterizes a three-placer trace sweep.
	TraceSweepConfig = experiments.TraceSweepConfig
	// TraceSweepResult compares the placers over one trace; its Table
	// renders the rejection-rate / p99 report.
	TraceSweepResult = experiments.TraceSweepResult
)

// LoadTrace reads a JSON or CSV trace file (format by extension; see
// internal/arrivals/README.md for the schema).
func LoadTrace(path string) (Trace, error) { return arrivals.Load(path) }

// SynthesizeTrace generates a seeded synthetic churn trace; identical
// configs yield identical traces.
func SynthesizeTrace(cfg ChurnConfig) Trace { return arrivals.Synthesize(cfg) }

// ReplayTrace builds a fleet from cfg and feeds the trace through it:
// arrivals are placed by cfg.Placer, departures free their bookings and
// cache footprint. Rejections are recorded in the result, not returned
// as errors. The replay is deterministic for a given trace and config,
// serial or parallel (Result.Fingerprint).
func ReplayTrace(cfg ClusterConfig, tr Trace, opts ReplayOptions) (ReplayResult, error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	return arrivals.Replay(c.fleet, tr, opts)
}

// SweepTrace replays the trace through all three placement policies on
// identically seeded fleets and reports per-policy rejection rate,
// utilization and fleet-wide p50/p95/p99 normalized performance — the
// paper's contrast under churn.
func SweepTrace(tr Trace, cfg TraceSweepConfig) (*TraceSweepResult, error) {
	return experiments.TraceSweep(tr, cfg)
}
