package kyoto

// The fleet lifecycle facade: replayable arrival/departure traces,
// synthetic churn, the pending queue for rejected arrivals, live
// migration (rebalancers), and the sweeps that contrast placement and
// rebalancing policies over one trace. See internal/arrivals for the
// engine and its README for the on-disk trace format and queue
// semantics; internal/cluster/README.md documents the migration layer.

import (
	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/detect"
	"kyoto/internal/experiments"
)

// Re-exported lifecycle types.
type (
	// TraceEvent is one trace record: submit tick, lifetime, sizing and
	// cache-aggressiveness class of one VM.
	TraceEvent = arrivals.Event
	// Trace is an ordered set of lifecycle events.
	Trace = arrivals.Trace
	// ChurnConfig parameterizes the seeded synthetic churn generator
	// (Poisson-style arrivals, heavy-tailed lifetimes).
	ChurnConfig = arrivals.SynthConfig
	// ClassShare weights one application class in a synthetic mix.
	ClassShare = arrivals.ClassShare
	// ReplayOptions tunes a trace replay.
	ReplayOptions = arrivals.Options
	// ReplayRecord is one VM's outcome: placement (or rejection),
	// residency bounds, and lifetime counters.
	ReplayRecord = arrivals.Record
	// ReplayResult is a whole replay's outcome, with a deterministic
	// Fingerprint.
	ReplayResult = arrivals.Result
	// HostOverride customizes one host of an otherwise uniform fleet
	// (heterogeneous machines, memory or permit budgets).
	HostOverride = cluster.HostOverride
	// TraceSweepConfig parameterizes a three-placer trace sweep.
	TraceSweepConfig = experiments.TraceSweepConfig
	// TraceSweepResult compares the placers over one trace; its Table
	// renders the rejection-rate / p99 report.
	TraceSweepResult = experiments.TraceSweepResult
	// Rebalancer plans live migrations from per-epoch pollution views;
	// use NewReactiveRebalancer / NewTopologyRebalancer or implement your
	// own against the cluster view types.
	Rebalancer = cluster.Rebalancer
	// RebalanceView is the fleet snapshot a Rebalancer plans from.
	RebalanceView = cluster.RebalanceView
	// VMLoad is one VM's pollution observation within a RebalanceView.
	VMLoad = cluster.VMLoad
	// Migration is one planned VM move.
	Migration = cluster.Migration
	// MigrationEvent is one applied live migration in a ReplayResult.
	MigrationEvent = arrivals.MigrationEvent
	// PendingPolicy selects what a replay does with arrivals no host can
	// take (reject, queue FIFO, queue with deadline).
	PendingPolicy = arrivals.PendingPolicy
	// MigrationSweepConfig parameterizes a rebalancer x placer sweep.
	MigrationSweepConfig = experiments.MigrationSweepConfig
	// MigrationSweepResult compares the combinations over one trace; its
	// Table renders the migration-vs-admission report.
	MigrationSweepResult = experiments.MigrationSweepResult
	// DetectorConfig tunes the streaming change-point detector behind
	// the signature rebalancer (EWMA smoothing, CUSUM drift/threshold,
	// warm-up); the zero value selects the detect package defaults.
	DetectorConfig = detect.Config
	// ChangePoint is one confirmed regime shift in a VM's pollution-rate
	// series, as logged by the signature rebalancer.
	ChangePoint = cluster.ChangePoint
	// LifetimeEstimator predicts a VM's expected remaining lifetime from
	// its age; the signature rebalancer uses it to skip migrations that
	// would not amortize their cache-rewarm cost.
	LifetimeEstimator = cluster.LifetimeEstimator
	// DetectionSweepConfig parameterizes the three-arm detection sweep.
	DetectionSweepConfig = experiments.DetectionSweepConfig
	// DetectionSweepResult scores threshold-reactive, signature-reactive
	// and admission-only arms against the trace's aggressive-app ground
	// truth; its Table reports false-trigger rates and time-to-detect.
	DetectionSweepResult = experiments.DetectionSweepResult
	// TwoTierTraceResult pairs a broad analytic trace sweep with the
	// exact re-runs of its leading arms (SweepTraceTwoTier).
	TwoTierTraceResult = experiments.TwoTierTraceResult
)

// Pending-queue policies (see arrivals.PendingPolicy).
const (
	// PendingNone rejects unplaceable arrivals outright.
	PendingNone = arrivals.PendingNone
	// PendingFIFO queues them and retries in submit order as capacity
	// frees.
	PendingFIFO = arrivals.PendingFIFO
	// PendingDeadline is PendingFIFO with a bounded wait: VMs queued
	// longer than ReplayOptions.MaxWait are dropped.
	PendingDeadline = arrivals.PendingDeadline
)

// NewReactiveRebalancer returns the hotspot-chasing rebalancer: each
// epoch, the worst polluter (by Equation 1) of the most-polluted host is
// live-migrated to the least-polluted host with capacity headroom, if it
// exceeds threshold (0 selects the default, one Figure-5 permit). A
// per-VM migration cooldown (hysteresis) keeps the policy from bouncing
// the same VM on consecutive epochs; the returned instance carries that
// state, so use a fresh one per replay.
func NewReactiveRebalancer(threshold float64) Rebalancer {
	return &cluster.Reactive{Threshold: threshold}
}

// NewTopologyRebalancer returns the heterogeneity-aware rebalancer: like
// NewReactiveRebalancer (including the per-VM migration cooldown), but
// polluters are steered onto hosts with a larger LLC (HostOverride
// machines) when one fits, where the same miss stream pollutes a smaller
// cache fraction.
func NewTopologyRebalancer(threshold float64) Rebalancer {
	return &cluster.TopologyAware{Threshold: threshold}
}

// NewSignatureRebalancer returns the change-detection rebalancer: every
// VM's Equation-1 rate series runs through a streaming CUSUM
// change-point detector (DetectorConfig; zero value = defaults), and
// migrations are planned only on confirmed upward shifts — the
// victim-side signal that a polluter landed on the host. Confirmed
// shifts evict the shifted host's worst polluter above threshold (0
// selects the default) toward the coolest feasible host, batched up to
// a per-epoch cap. Attach a LifetimeEstimator (TraceLifetimes) to skip
// migrations whose expected remaining VM lifetime would not amortize
// the evicted cache footprint. The returned instance carries per-replay
// state (detectors, cooldowns, the change-point log), so use a fresh
// one per replay.
func NewSignatureRebalancer(threshold float64, det DetectorConfig, lifetimes LifetimeEstimator) Rebalancer {
	return &cluster.Signature{Threshold: threshold, Detector: det, Lifetimes: lifetimes}
}

// TraceLifetimes builds the empirical mean-residual-life estimator from
// a trace's lifetime distribution, the LifetimeEstimator the signature
// rebalancer's amortization check wants.
func TraceLifetimes(tr Trace) LifetimeEstimator { return arrivals.NewLifetimeStats(tr) }

// RebalancerByName returns the built-in rebalancer with the given CLI
// name ("reactive", "topo", "signature"); "none" and "" return nil (no
// rebalancing).
func RebalancerByName(name string) (Rebalancer, error) {
	return cluster.RebalancerByName(name)
}

// RebalancerNames lists the built-in rebalancer names.
func RebalancerNames() []string { return cluster.RebalancerNames() }

// PendingPolicyByName returns the pending-queue policy with the given CLI
// name ("none", "fifo", "deadline").
func PendingPolicyByName(name string) (PendingPolicy, error) {
	return arrivals.PendingPolicyByName(name)
}

// PendingPolicyNames lists the pending-queue policy names.
func PendingPolicyNames() []string { return arrivals.PendingPolicyNames() }

// LoadTrace reads a JSON or CSV trace file (format by extension; see
// internal/arrivals/README.md for the schema).
func LoadTrace(path string) (Trace, error) { return arrivals.Load(path) }

// SynthesizeTrace generates a seeded synthetic churn trace; identical
// configs yield identical traces.
func SynthesizeTrace(cfg ChurnConfig) Trace { return arrivals.Synthesize(cfg) }

// ReplayTrace builds a fleet from cfg and feeds the trace through it:
// arrivals are placed by cfg.Placer, departures free their bookings and
// cache footprint. Rejections are recorded in the result, not returned
// as errors. The replay is deterministic for a given trace and config,
// serial or parallel (Result.Fingerprint).
func ReplayTrace(cfg ClusterConfig, tr Trace, opts ReplayOptions) (ReplayResult, error) {
	c, err := NewCluster(cfg)
	if err != nil {
		return ReplayResult{}, err
	}
	return arrivals.Replay(c.fleet, tr, opts)
}

// SweepTrace replays the trace through all three placement policies on
// identically seeded fleets and reports per-policy rejection rate,
// utilization and fleet-wide p50/p95/p99 normalized performance — the
// paper's contrast under churn.
func SweepTrace(tr Trace, cfg TraceSweepConfig) (*TraceSweepResult, error) {
	return experiments.TraceSweep(tr, cfg)
}

// SweepTraceTwoTier runs the trace sweep two-tier: the whole sweep on
// the analytic fast tier, then the topK arms with the best analytic p99
// floor re-run on the exact tier (with exact solo baselines). topK <= 0
// confirms one arm. The broad pass ranks, the exact pass decides.
func SweepTraceTwoTier(tr Trace, cfg TraceSweepConfig, topK int) (*TwoTierTraceResult, error) {
	return experiments.TwoTierTraceSweep(tr, cfg, topK)
}

// SweepMigrations replays the trace through every requested rebalancer x
// placer combination on identically seeded fleets — reactive operation
// (live migration, pending queue) side by side with Kyoto's proactive
// admission. The result's Table reports rejection rate, queue-wait
// percentiles, migration counts and the p99 normalized-performance floor
// per combination.
func SweepMigrations(tr Trace, cfg MigrationSweepConfig) (*MigrationSweepResult, error) {
	return experiments.MigrationSweep(tr, cfg)
}

// SweepDetection replays the trace through three arms on identically
// seeded fleets — proactive Kyoto admission, threshold-reactive
// migration and signature-reactive migration (change-point detection) —
// and scores each arm's triggers against the trace's aggressive-app
// arrivals: false-trigger rate, detection coverage and mean
// time-to-detect, alongside the usual p99 normalized-performance floor.
func SweepDetection(tr Trace, cfg DetectionSweepConfig) (*DetectionSweepResult, error) {
	return experiments.DetectionSweep(tr, cfg)
}
