package kyoto_test

import (
	"testing"

	"kyoto"
)

// TestPublicLifecycleAPI drives the churn surface end to end: synthesize,
// replay on a heterogeneous fleet, remove through the cluster facade.
func TestPublicLifecycleAPI(t *testing.T) {
	tr := kyoto.SynthesizeTrace(kyoto.ChurnConfig{Seed: 4, VMs: 8, Horizon: 30, MeanLifetime: 10})
	if len(tr.Events) != 8 {
		t.Fatalf("synthesized %d events", len(tr.Events))
	}
	cfg := kyoto.ClusterConfig{
		Hosts:  2,
		World:  kyoto.WorldConfig{Seed: 4, EnableKyoto: true},
		Placer: kyoto.PlacerKyoto,
		HostOverrides: map[int]kyoto.HostOverride{
			1: {MemoryMB: 1024},
		},
	}
	res, err := kyoto.ReplayTrace(cfg, tr, kyoto.ReplayOptions{DrainTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed == 0 || res.EndTick == 0 {
		t.Fatalf("replay did nothing: %+v", res)
	}
	again, err := kyoto.ReplayTrace(cfg, tr, kyoto.ReplayOptions{DrainTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != again.Fingerprint() {
		t.Fatal("public replay not deterministic")
	}
}

func TestClusterRemove(t *testing.T) {
	c, err := kyoto.NewCluster(kyoto.ClusterConfig{
		Hosts: 1,
		World: kyoto.WorldConfig{Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(kyoto.ClusterVMSpec{VMSpec: kyoto.VMSpec{Name: "v", App: "gcc"}}); err != nil {
		t.Fatal(err)
	}
	c.RunTicks(6)
	v, err := c.Remove("v")
	if err != nil {
		t.Fatal(err)
	}
	if v.Counters().Instructions == 0 {
		t.Fatal("removed VM lost its lifetime counters")
	}
	if _, err := c.Remove("v"); err == nil {
		t.Fatal("double remove must error")
	}
	if got, _ := c.FindVM("v"); got != nil {
		t.Fatal("removed VM still findable")
	}
}
