package kyoto

import "testing"

func TestNewWorldDefaults(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.VMs()) != 0 || w.Now() != 0 {
		t.Fatal("fresh world not empty")
	}
	if w.Kyoto() != nil {
		t.Fatal("kyoto must be off by default")
	}
	if w.MachineTable() == "" {
		t.Fatal("machine table empty")
	}
}

func TestFacadeEndToEndIsolation(t *testing.T) {
	run := func(enableKyoto bool) float64 {
		w, err := NewWorld(WorldConfig{Seed: 1, EnableKyoto: enableKyoto})
		if err != nil {
			t.Fatal(err)
		}
		sen, err := w.AddVM(VMSpec{Name: "sen", App: "gcc", Pins: []int{0}, LLCCap: 250})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.AddVM(VMSpec{Name: "dis", App: "lbm", Pins: []int{1}, LLCCap: 250}); err != nil {
			t.Fatal(err)
		}
		w.RunTicks(45)
		return sen.Counters().IPC()
	}
	plain, protected := run(false), run(true)
	if protected <= plain*1.2 {
		t.Fatalf("kyoto IPC %v must clearly beat plain %v", protected, plain)
	}
}

func TestFacadeShadowMonitor(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 1, EnableKyoto: true, Monitor: MonitorShadowSim})
	if err != nil {
		t.Fatal(err)
	}
	dis, err := w.AddVM(VMSpec{Name: "dis", App: "lbm", Pins: []int{0}, LLCCap: 100})
	if err != nil {
		t.Fatal(err)
	}
	w.RunTicks(30)
	if dis.Punishments == 0 {
		t.Fatal("shadow-monitored disruptor must be punished")
	}
	if w.Kyoto() == nil || w.Kyoto().LastRate(dis) <= 0 {
		t.Fatal("ledger not exposed")
	}
}

func TestFacadeSchedulerKinds(t *testing.T) {
	for _, kind := range []SchedulerKind{CreditScheduler, CFSScheduler, PiscesScheduler} {
		w, err := NewWorld(WorldConfig{Seed: 1, Scheduler: kind})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		spec := VMSpec{Name: "v", App: "povray", Pins: []int{0}}
		if _, err := w.AddVM(spec); err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		w.RunTicks(5)
		if w.FindVM("v").Counters().Instructions == 0 {
			t.Fatalf("kind %d made no progress", kind)
		}
	}
	if _, err := NewWorld(WorldConfig{Scheduler: 99}); err == nil {
		t.Fatal("unknown scheduler must fail")
	}
	if _, err := NewWorld(WorldConfig{EnableKyoto: true, Monitor: 99}); err == nil {
		t.Fatal("unknown monitor must fail")
	}
}

func TestFacadeRunUntil(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := w.AddVM(VMSpec{Name: "v", App: "povray", Pins: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	ticks := w.RunUntil(func(w *World) bool {
		return d.Counters().Instructions > 500_000
	}, 100)
	if ticks == 100 {
		t.Fatal("work never completed")
	}
	if w.NowMillis() <= 0 {
		t.Fatal("clock did not advance")
	}
}

func TestProfileLookups(t *testing.T) {
	names := ProfileNames()
	if len(names) < 12 {
		t.Fatalf("expected the paper's app suite, got %d profiles", len(names))
	}
	p, err := LookupProfile("gcc")
	if err != nil || p.Name != "gcc" {
		t.Fatalf("lookup gcc: %v %v", p, err)
	}
	if _, err := LookupProfile("nope"); err == nil {
		t.Fatal("unknown profile must fail")
	}
}

func TestIndicatorHelpers(t *testing.T) {
	d := Counters{LLCMisses: 100, UnhaltedCycles: 100_000, HaltedCycles: 100_000}
	if Equation1Value(d) != 100 {
		t.Fatalf("eq1 = %v", Equation1Value(d))
	}
	if RawLLCMValue(d) != 50 {
		t.Fatalf("llcm = %v", RawLLCMValue(d))
	}
}
